"""The IndexNode replicated state machine.

Every Raft replica owns one :class:`IndexNodeState`: the IndexTable, the
TopDirPathCache and the Invalidator.  Committed commands are applied in log
order on every replica, so all replicas converge (§4); cache-invalidation
information rides inside the commands, exactly as §5.1.3 prescribes
("operations requiring cache invalidation append the full paths of affected
directories to the Raft logs").

``apply`` never raises: it returns ``("ok", payload)`` or an error tuple the
serving layer translates back into exceptions, because a raising apply would
crash the Raft apply loop and, worse, would have to raise identically on
every replica.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.errors import InvalidPathError
from repro.indexnode.index_table import IndexTable
from repro.indexnode.invalidator import Invalidator
from repro.indexnode.path_cache import TopDirPathCache
from repro.paths import split_path
from repro.types import ROOT_ID, AccessMeta, Permission


@dataclasses.dataclass(frozen=True)
class LookupOutcome:
    """Result of one local path resolution, with cost accounting.

    ``target_id`` is the resolved directory's id (``want="dir"``) or the
    final component's parent directory id (``want="parent"``);
    ``index_probes`` / ``cache_probes`` let the serving layer charge CPU
    faithfully (the probes already happened logically).
    """

    path: str
    target_id: int
    final_name: Optional[str]
    permission: Permission
    depth: int
    cache_hit: bool
    bypassed_cache: bool
    index_probes: int
    cache_probes: int


class IndexNodeState:
    """Replicated directory index state for one namespace replica."""

    def __init__(self, cache_k: int = 3, cache_enabled: bool = True,
                 root_id: int = ROOT_ID):
        self.table = IndexTable(root_id=root_id)
        self.cache = TopDirPathCache(cache_k, enabled=cache_enabled)
        self.invalidator = Invalidator(self.cache)
        self.applied_commands = 0

    # -- lookup (Figure 7) ---------------------------------------------------

    def lookup(self, path: str, want: str = "parent") -> LookupOutcome:
        """Resolve ``path`` against local state (pure; no simulated cost).

        ``want="parent"`` resolves the final component's *parent* directory
        (object operations: the dirent itself lives in TafDB);
        ``want="dir"`` resolves the full path as a directory chain.
        """
        if want not in ("parent", "dir"):
            raise ValueError(f"unknown want {want!r}")
        parts = split_path(path)
        if want == "parent":
            if not parts:
                raise InvalidPathError(path, "root has no parent")
            resolve_parts, final_name = parts[:-1], parts[-1]
        else:
            resolve_parts, final_name = parts, None

        index_probes = 0
        cache_probes = 0
        cache_hit = False
        version_before = self.invalidator.version()
        # Step 1: scan RemovalList for in-flight modifications on our path.
        blocked = self.invalidator.blocking_modification(path) is not None
        prefix = None if blocked else self.cache.cacheable_prefix(path)
        prefix_parts: List[str] = split_path(prefix) if prefix else []
        if len(prefix_parts) > len(resolve_parts):
            # Shallow parent resolution (depth < k): no cacheable prefix.
            prefix, prefix_parts = None, []

        start_id, start_perm = self.table.root_id, Permission.ALL
        consumed = 0
        if prefix is not None:
            # Step 2: probe TopDirPathCache for the truncated prefix.
            cache_probes += 1
            entry = self.cache.probe(prefix)
            if entry is not None:
                start_id, start_perm = entry.dir_id, entry.permission
                consumed = len(prefix_parts)
                cache_hit = True
            else:
                # Resolve the prefix through IndexTable, then cache it if no
                # modification raced us (timestamp check).
                pre_id, pre_perm, probes = self.table.resolve_dir(
                    prefix_parts, self.table.root_id, Permission.ALL, path)
                index_probes += probes
                self.invalidator.try_cache(
                    prefix, pre_id, pre_perm, version_before)
                start_id, start_perm = pre_id, pre_perm
                consumed = len(prefix_parts)
        # Step 3: resolve the remaining levels through IndexTable.
        target_id, perm, probes = self.table.resolve_dir(
            resolve_parts[consumed:], start_id, start_perm, path)
        index_probes += probes
        return LookupOutcome(
            path=path,
            target_id=target_id,
            final_name=final_name,
            permission=perm,
            depth=len(parts),
            cache_hit=cache_hit,
            bypassed_cache=blocked,
            index_probes=index_probes,
            cache_probes=cache_probes,
        )

    # -- replicated mutations ------------------------------------------------------

    def apply(self, command: Tuple) -> Tuple:
        """Apply one committed Raft command.  Deterministic; never raises."""
        self.applied_commands += 1
        op = command[0]
        handler = getattr(self, "_apply_" + op, None)
        if handler is None:
            return ("err", f"unknown command {op!r}")
        return handler(*command[1:])

    def _apply_mkdir(self, pid: int, name: str, dir_id: int,
                     perm_value: int) -> Tuple:
        existing = self.table.get(pid, name)
        if existing is not None:
            if existing.id == dir_id:
                return ("ok", dir_id)  # idempotent retry
            return ("exists", existing.id)
        self.table.insert(AccessMeta(pid=pid, name=name, id=dir_id,
                                     permission=Permission(perm_value)))
        return ("ok", dir_id)

    def _apply_rmdir(self, pid: int, name: str, full_path: str) -> Tuple:
        meta = self.table.get(pid, name)
        if meta is None:
            return ("missing", None)
        self.table.remove(pid, name)
        # §5.1.2: an empty directory can't prefix another; only its own
        # cached prefix entry (if any) is dropped — no RemovalList round.
        self.invalidator.on_rmdir(full_path)
        return ("ok", meta.id)

    def _apply_rename_lock(self, src_pid: int, src_name: str, owner: str,
                           src_path: str) -> Tuple:
        meta = self.table.get(src_pid, src_name)
        if meta is None:
            return ("missing", None)
        if meta.locked and meta.lock_owner != owner:
            return ("locked", meta.lock_owner)
        if not meta.locked:
            self.table.set_lock(src_pid, src_name, owner)
        # Block cached lookups under the moving subtree.
        self.invalidator.mark_modifying(src_path)
        return ("ok", meta.id)

    def _apply_rename_commit(self, src_pid: int, src_name: str,
                             dst_pid: int, dst_name: str) -> Tuple:
        meta = self.table.get(src_pid, src_name)
        if meta is None:
            return ("missing", None)
        if self.table.get(dst_pid, dst_name) is not None:
            return ("exists", None)
        moved = self.table.rename(src_pid, src_name, dst_pid, dst_name)
        # The RemovalList mark stays until the Invalidator's background
        # purge clears the affected cache range.
        return ("ok", moved.id)

    def _apply_rename_abort(self, src_pid: int, src_name: str, owner: str,
                            src_path: str) -> Tuple:
        self.table.clear_lock(src_pid, src_name, owner)
        # Nothing changed, so the mark can be withdrawn without purging.
        self.invalidator.unmark(src_path)
        return ("ok", None)

    def _apply_setperm(self, pid: int, name: str, perm_value: int,
                       full_path: str) -> Tuple:
        meta = self.table.get(pid, name)
        if meta is None:
            return ("missing", None)
        self.table.replace(dataclasses.replace(
            meta, permission=Permission(perm_value)))
        # Permission changes alter aggregated path permissions of every
        # descendant: invalidate the subtree's cached prefixes.
        self.invalidator.mark_modifying(full_path)
        return ("ok", meta.id)

    # -- snapshotting (Raft log compaction support) -----------------------------------

    def snapshot(self):
        """Deep-copy of all replicated state, for Raft snapshot shipping."""
        import copy
        return copy.deepcopy((self.table, self.cache, self.invalidator,
                              self.applied_commands))

    def restore(self, blob) -> None:
        """Replace local state with a (copied) snapshot in place, so
        existing references to this state machine stay valid."""
        import copy
        table, cache, invalidator, applied = copy.deepcopy(blob)
        self.table = table
        self.cache = cache
        self.invalidator = invalidator
        self.applied_commands = applied

    # -- bulk loading (benchmark setup backdoor) --------------------------------------

    def bulk_insert_dir(self, pid: int, name: str, dir_id: int,
                        permission: Permission = Permission.ALL) -> None:
        """Install a directory without going through Raft (namespace
        pre-population before timed runs, mirroring the paper's mdtest
        pre-fill)."""
        self.table.insert(AccessMeta(pid=pid, name=name, id=dir_id,
                                     permission=permission))

    def resolve_path_of(self, dir_id: int) -> str:
        return self.table.path_of(dir_id)
