"""IndexNode — Mantle's per-namespace directory index (§4, §5).

An IndexNode consolidates the *access metadata* of every directory in one
namespace (~80 bytes per directory) so that path resolution becomes a single
RPC.  The package splits along the paper's Figure 6/7:

* :mod:`~repro.indexnode.index_table` — the IndexTable keyed (pid, dirname),
  with lock bits for rename coordination;
* :mod:`~repro.indexnode.path_cache` — TopDirPathCache, the static
  truncate-k prefix cache (§5.1.1);
* :mod:`~repro.indexnode.invalidator` — the Invalidator with its PrefixTree
  and RemovalList (§5.1.2);
* :mod:`~repro.indexnode.state` — the replicated state machine (applied by
  every Raft replica);
* :mod:`~repro.indexnode.server` — the RPC surface (lookup, rename
  preparation with loop detection, mutation proposals), including
  follower/learner lookups (§5.1.3).
"""

from repro.indexnode.index_table import IndexTable
from repro.indexnode.path_cache import TopDirPathCache
from repro.indexnode.invalidator import Invalidator
from repro.indexnode.state import IndexNodeState, LookupOutcome
from repro.indexnode.server import IndexNodeService

__all__ = [
    "IndexTable",
    "TopDirPathCache",
    "Invalidator",
    "IndexNodeState",
    "LookupOutcome",
    "IndexNodeService",
]
