"""Path parsing and manipulation utilities.

COSS object keys look like filesystem paths ("/A/C/E/G").  Every system in
this reproduction resolves paths component by component, so parsing is on
the hot path of both the simulators and the unit tests; keep it allocation
light and strict about malformed inputs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidPathError

#: Reserved name used by TafDB delta records (§5.2.1 Figure 8); user paths
#: must never contain it.
ATTR_SENTINEL = "/_ATTR"

_MAX_COMPONENT = 255
_MAX_DEPTH = 256


def split_path(path: str) -> List[str]:
    """Split an absolute path into validated components.

    >>> split_path("/A/C/E")
    ['A', 'C', 'E']
    >>> split_path("/")
    []
    """
    if not isinstance(path, str):
        raise InvalidPathError(path, "path must be a string")
    if not path.startswith("/"):
        raise InvalidPathError(path, "path must be absolute")
    if path == "/":
        return []
    # A trailing slash is tolerated (S3-style directory markers).
    trimmed = path[1:].rstrip("/")
    if not trimmed:
        return []
    parts = trimmed.split("/")
    if len(parts) > _MAX_DEPTH:
        raise InvalidPathError(path, f"deeper than {_MAX_DEPTH} levels")
    for part in parts:
        if not part:
            raise InvalidPathError(path, "empty component")
        if part in (".", ".."):
            raise InvalidPathError(path, "'.'/'..' components are not allowed")
        if len(part) > _MAX_COMPONENT:
            raise InvalidPathError(path, f"component longer than {_MAX_COMPONENT}")
        if part == ATTR_SENTINEL:
            raise InvalidPathError(path, "reserved component name")
    return parts


def normalize(path: str) -> str:
    """Return the canonical form of ``path`` ("/" + components)."""
    return "/" + "/".join(split_path(path))


def parent_and_name(path: str) -> Tuple[str, str]:
    """Split a path into (parent path, final component).

    >>> parent_and_name("/A/C/E")
    ('/A/C', 'E')
    """
    parts = split_path(path)
    if not parts:
        raise InvalidPathError(path, "root has no parent")
    if len(parts) == 1:
        return "/", parts[0]
    return "/" + "/".join(parts[:-1]), parts[-1]


def join(base: str, *names: str) -> str:
    """Join components onto a base path.

    >>> join("/A", "C", "E")
    '/A/C/E'
    """
    parts = split_path(base)
    for name in names:
        parts.extend(split_path("/" + name))
    return "/" + "/".join(parts)


def depth(path: str) -> int:
    """Number of components in ``path`` (root is depth 0)."""
    return len(split_path(path))


def is_prefix(prefix: str, path: str) -> bool:
    """True when ``prefix`` names ``path`` itself or one of its ancestors.

    >>> is_prefix("/A/C", "/A/C/E")
    True
    >>> is_prefix("/A/C", "/A/CE")
    False
    """
    pre = split_path(prefix)
    full = split_path(path)
    return len(pre) <= len(full) and full[: len(pre)] == pre


def ancestors(path: str) -> List[str]:
    """All strict ancestors of ``path`` from the root downwards.

    >>> ancestors("/A/C/E")
    ['/', '/A', '/A/C']
    """
    parts = split_path(path)
    result = ["/"]
    for i in range(1, len(parts)):
        result.append("/" + "/".join(parts[:i]))
    return result


def truncate_prefix(path: str, k: int) -> str:
    """Drop the final ``k`` components — the TopDirPathCache key rule.

    Resolving "/A/C/E/G/H" with k=3 consults the cache for "/A/C" (§5.1.1).
    Returns "/" when fewer than ``k`` components remain.

    >>> truncate_prefix("/A/C/E/G/H", 3)
    '/A/C'
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    parts = split_path(path)
    keep = len(parts) - k
    if keep <= 0:
        return "/"
    return "/" + "/".join(parts[:keep])


def common_ancestor(a: str, b: str) -> str:
    """Least common ancestor of two paths (used by rename loop detection).

    >>> common_ancestor("/A/C/E", "/A/C/F/G")
    '/A/C'
    """
    pa, pb = split_path(a), split_path(b)
    out = []
    for x, y in zip(pa, pb):
        if x != y:
            break
        out.append(x)
    return "/" + "/".join(out) if out else "/"


def rewrite_prefix(path: str, old_prefix: str, new_prefix: str) -> str:
    """Replace the ``old_prefix`` ancestor of ``path`` with ``new_prefix``.

    Used when a dirrename moves a subtree: descendants' cached full paths
    are rewritten from the source to the destination prefix.
    """
    if not is_prefix(old_prefix, path):
        raise ValueError(f"{old_prefix!r} is not a prefix of {path!r}")
    suffix = split_path(path)[len(split_path(old_prefix)):]
    base = split_path(new_prefix)
    return "/" + "/".join(base + suffix)
