"""Radix (prefix) tree over path components.

The Invalidator (§5.1.2) rebuilds the directory tree of every path cached in
TopDirPathCache so that a directory modification can find *all* cached
descendants with one range query — something the flat hash table underlying
the cache cannot do.  Keys are absolute paths; edges are path components.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.paths import split_path


class _Node:
    __slots__ = ("children", "terminal")

    def __init__(self):
        self.children: Dict[str, _Node] = {}
        self.terminal = False


class PrefixTree:
    """Set of absolute paths supporting subtree (descendant) queries.

    >>> t = PrefixTree()
    >>> t.insert("/a/b")
    True
    >>> t.insert("/a/b/c")
    True
    >>> sorted(t.descendants("/a"))
    ['/a/b', '/a/b/c']
    """

    def __init__(self):
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, path: str) -> bool:
        node = self._walk(path)
        return node is not None and node.terminal

    def _walk(self, path: str) -> Optional[_Node]:
        node = self._root
        for part in split_path(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def insert(self, path: str) -> bool:
        """Add ``path``; returns False if it was already present."""
        node = self._root
        for part in split_path(path):
            nxt = node.children.get(part)
            if nxt is None:
                nxt = _Node()
                node.children[part] = nxt
            node = nxt
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        return True

    def remove(self, path: str) -> bool:
        """Remove ``path``; returns False if absent.  Prunes empty branches."""
        parts = split_path(path)
        spine: List[tuple] = []
        node = self._root
        for part in parts:
            nxt = node.children.get(part)
            if nxt is None:
                return False
            spine.append((node, part))
            node = nxt
        if not node.terminal:
            return False
        node.terminal = False
        self._size -= 1
        # Prune nodes that hold no entries and no children.
        for parent, part in reversed(spine):
            child = parent.children[part]
            if child.terminal or child.children:
                break
            del parent.children[part]
        return True

    def descendants(self, prefix: str) -> Iterator[str]:
        """Yield every stored path equal to or underneath ``prefix``.

        This is the invalidation range query: dirrename on ``prefix``
        invalidates exactly these cache entries.
        """
        parts = split_path(prefix)
        node = self._walk(prefix)
        if node is None:
            return
        stack = [(node, parts)]
        while stack:
            current, comps = stack.pop()
            if current.terminal:
                yield "/" + "/".join(comps)
            # Reverse-sorted push so iteration yields lexicographic order.
            for name in sorted(current.children, reverse=True):
                stack.append((current.children[name], comps + [name]))

    def remove_subtree(self, prefix: str) -> List[str]:
        """Remove and return every path under (and including) ``prefix``."""
        victims = list(self.descendants(prefix))
        for victim in victims:
            self.remove(victim)
        return victims

    def has_descendant(self, prefix: str) -> bool:
        """True if any stored path lies at or under ``prefix``."""
        node = self._walk(prefix)
        if node is None:
            return False
        stack = [node]
        while stack:
            current = stack.pop()
            if current.terminal:
                return True
            stack.extend(current.children.values())
        return False

    def paths(self) -> Iterator[str]:
        """Iterate every stored path (lexicographic component order)."""
        return self.descendants("/")
