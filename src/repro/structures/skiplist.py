"""Probabilistic skiplist — the ordered set behind RemovalList (§5.1.2).

RemovalList records the full paths of directories currently being modified.
Lookups consult it on every request ("is any path being modified a prefix of
the path I'm resolving?"), so membership probes must be cheap; the paper
uses a lock-free skiplist, we use the classic probabilistic one with a
global version counter standing in for the timestamp conflict-detection
mechanism.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.paths import ancestors

_MAX_LEVEL = 16
_P = 0.5


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[str], value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional[_SkipNode]] = [None] * level


class SkipList:
    """Ordered string-keyed map with O(log n) expected operations.

    ``version`` increments on every mutation; readers snapshot it before a
    lookup and re-check afterwards to detect concurrent modification — the
    "conventional timestamp mechanism" used to decide whether a resolved
    prefix may be cached (§5.1.2).
    """

    def __init__(self, seed: int = 42):
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._rng = random.Random(seed)
        self.version = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        return self._search(key) is not None

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: str) -> List[_SkipNode]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
            update[lvl] = node
        return update

    def insert(self, key: str, value: Any = True) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        self.version += 1
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _SkipNode(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._size += 1
        return True

    def remove(self, key: str) -> bool:
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is None or candidate.key != key:
            return False
        self.version += 1
        for lvl in range(len(candidate.forward)):
            if update[lvl].forward[lvl] is candidate:
                update[lvl].forward[lvl] = candidate.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def _search(self, key: str) -> Optional[_SkipNode]:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < key:
                node = node.forward[lvl]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node
        return None

    def get(self, key: str, default: Any = None) -> Any:
        node = self._search(key)
        return node.value if node is not None else default

    def items(self) -> Iterator[Tuple[str, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[str]:
        for key, _value in self.items():
            yield key

    def pop_all(self) -> List[Tuple[str, Any]]:
        """Atomically drain every entry (the Invalidator's periodic poll)."""
        out = list(self.items())
        if out:
            self.version += 1
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        return out

    # -- RemovalList-specific helpers --------------------------------------

    def contains_prefix_of(self, path: str) -> Optional[str]:
        """Return a stored key that is ``path`` or one of its ancestors.

        This is the step (1) scan of the lookup workflow (Figure 7): if any
        directory being modified prefixes the requested path, the lookup must
        bypass TopDirPathCache.  Cost is O(depth x log n); with the list
        empty "most of the time" (§5.1.2) the fast path is a single probe.
        """
        if self._size == 0:
            return None
        for candidate in ancestors(path) + [path]:
            if candidate in self:
                return candidate
        return None
