"""Core data structures behind IndexNode and the baselines.

* :class:`~repro.structures.radix_tree.PrefixTree` — the Invalidator's radix
  tree over cached path prefixes (range queries for invalidation, §5.1.2).
* :class:`~repro.structures.skiplist.SkipList` — the ordered set behind
  RemovalList (paths currently being modified).
* :class:`~repro.structures.lru.LRUCache` — AM-Cache for the InfiniFS
  baseline and the Figure 20 caching study.

The paper implements PrefixTree and RemovalList lock-free in C++; under the
GIL the lock-free property is moot, but the *interfaces and asymptotics*
(prefix range scans, ordered probes) are preserved, and a version counter
provides the timestamp-based conflict detection §5.1.2 describes.
"""

from repro.structures.lru import LRUCache
from repro.structures.radix_tree import PrefixTree
from repro.structures.skiplist import SkipList

__all__ = ["PrefixTree", "SkipList", "LRUCache"]
