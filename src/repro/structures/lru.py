"""Bounded LRU cache with hit/miss accounting.

Used by the InfiniFS baseline's AM-Cache (access-metadata cache) and by the
Figure 20 "adding metadata caching" study.  Mantle's own TopDirPathCache is
deliberately *not* an LRU — the paper's point is that a static, truncate-k
prefix cache avoids promotion/demotion churn — so that lives separately in
:mod:`repro.indexnode.path_cache`.
"""

from __future__ import annotations

import collections
from typing import Any, Iterator, Optional, Tuple


class LRUCache:
    """Classic move-to-front LRU with a hard capacity."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "collections.OrderedDict[Any, Any]" = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def get(self, key: Any, default: Any = None) -> Any:
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def peek(self, key: Any, default: Any = None) -> Any:
        """Read without touching recency or hit counters."""
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> Optional[Tuple[Any, Any]]:
        """Insert/update; returns the evicted (key, value) pair if any."""
        evicted = None
        if key in self._data:
            self._data.move_to_end(key)
        elif len(self._data) >= self.capacity:
            evicted = self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = value
        return evicted

    def invalidate(self, key: Any) -> bool:
        if key in self._data:
            del self._data[key]
            return True
        return False

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        victims = [k for k in self._data if predicate(k)]
        for key in victims:
            del self._data[key]
        return len(victims)

    def clear(self) -> None:
        self._data.clear()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(list(self._data.items()))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
