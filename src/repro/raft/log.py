"""The replicated log, with snapshot-based compaction.

1-indexed and append-only; a snapshot cuts the prefix up to
``base_index`` (whose term is retained for the consistency check).  Index 0
— or, after compaction, ``base_index`` — is the anchoring sentinel.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One replicated command, stamped with the leader term that created it."""

    term: int
    index: int
    command: Any


class RaftLog:
    """Append-only log with conflict truncation and prefix compaction."""

    def __init__(self):
        self._entries: List[LogEntry] = []
        self._base_index = 0
        self._base_term = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def base_index(self) -> int:
        """Index of the last snapshotted (compacted-away) entry."""
        return self._base_index

    @property
    def base_term(self) -> int:
        return self._base_term

    @property
    def last_index(self) -> int:
        return self._base_index + len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self._base_term

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index``; the base term at the snapshot
        boundary; None when the index is compacted away or beyond the end."""
        if index == self._base_index:
            return self._base_term
        offset = index - self._base_index
        if 1 <= offset <= len(self._entries):
            return self._entries[offset - 1].term
        return None

    def entry(self, index: int) -> LogEntry:
        offset = index - self._base_index
        if not 1 <= offset <= len(self._entries):
            raise IndexError(f"log index {index} out of range "
                             f"(base {self._base_index}, "
                             f"last {self.last_index})")
        return self._entries[offset - 1]

    def append(self, term: int, command: Any) -> LogEntry:
        entry = LogEntry(term, self.last_index + 1, command)
        self._entries.append(entry)
        return entry

    def entries_from(self, start: int, limit: int = 64) -> List[LogEntry]:
        """Entries with index >= ``start`` (at most ``limit``); entries
        before the snapshot boundary are gone — callers must check
        ``base_index`` first and fall back to snapshot installation."""
        start = max(start, self._base_index + 1)
        offset = start - self._base_index - 1
        return self._entries[offset:offset + limit]

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """Raft consistency check for an AppendEntries at ``prev_index``."""
        term = self.term_at(prev_index)
        return term is not None and term == prev_term

    def merge(self, prev_index: int, entries: Sequence[LogEntry]) -> int:
        """Append ``entries`` after ``prev_index``, truncating conflicts.

        Entries at or below the snapshot boundary are already durable and
        are skipped.  Returns the number of *new* entries physically
        appended (for fsync accounting).
        """
        appended = 0
        for offset, entry in enumerate(entries):
            index = prev_index + 1 + offset
            if index <= self._base_index:
                continue  # covered by our snapshot
            existing_term = self.term_at(index)
            if existing_term is None:
                self._entries.append(entry)
                appended += 1
            elif existing_term != entry.term:
                # Conflict: drop this suffix and everything after it.
                del self._entries[index - self._base_index - 1:]
                self._entries.append(entry)
                appended += 1
        return appended

    def up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Is (other_last_term, other_last_index) at least as current as us?
        (The §5.4.1 election restriction from the Raft paper.)"""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index

    # -- snapshotting -----------------------------------------------------------

    def compact_to(self, index: int, term: int) -> int:
        """Drop every entry up to and including ``index`` (snapshot taken).

        Returns the number of entries discarded."""
        if index <= self._base_index:
            return 0
        if index > self.last_index:
            raise IndexError(f"cannot compact past last index "
                             f"({index} > {self.last_index})")
        dropped = index - self._base_index
        del self._entries[:dropped]
        self._base_index = index
        self._base_term = term
        return dropped

    def reset_to(self, index: int, term: int) -> None:
        """Replace the whole log with a snapshot boundary (snapshot
        installation on a lagging replica)."""
        self._entries.clear()
        self._base_index = index
        self._base_term = term
