"""Raft consensus for IndexNode replication (§4, §5.1.3, §5.2.3).

A from-scratch Raft implementation over the DES substrate: leader election,
log replication with consistency checks, commit on voter majority, plus the
two paper-specific extensions —

* **log batching** (§5.2.3): the leader aggregates proposals inside a small
  window and persists them with a single fsync, amortising the durable-write
  cost that otherwise caps directory-modification throughput;
* **follower / learner reads** (§5.1.3): replicas serve lookups after a
  commitIndex barrier against the leader (queries are piggybacked/batched),
  waiting until their local applyIndex catches up to avoid stale reads.
"""

from repro.raft.log import LogEntry, RaftLog
from repro.raft.messages import (
    AppendEntries,
    AppendReply,
    RequestVote,
    VoteReply,
)
from repro.raft.node import NotLeaderError, RaftConfig, RaftNode, Role
from repro.raft.group import RaftGroup

__all__ = [
    "LogEntry",
    "RaftLog",
    "RequestVote",
    "VoteReply",
    "AppendEntries",
    "AppendReply",
    "RaftNode",
    "RaftConfig",
    "Role",
    "NotLeaderError",
    "RaftGroup",
]
