"""Raft RPC messages (sent asynchronously through mailbox Stores)."""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.raft.log import LogEntry


@dataclasses.dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: int
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(frozen=True)
class VoteReply:
    term: int
    voter_id: int
    granted: bool


@dataclasses.dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: int
    prev_index: int
    prev_term: int
    entries: Tuple[LogEntry, ...]
    leader_commit: int

    @property
    def is_heartbeat(self) -> bool:
        return not self.entries


@dataclasses.dataclass(frozen=True)
class AppendReply:
    term: int
    follower_id: int
    success: bool
    match_index: int
    #: Tracer-gated timing piggyback (0.0 when tracing is off): how long
    #: this follower spent fsyncing the shipped batch and applying newly
    #: committed entries before replying.  Lets the leader split a
    #: proposer's ``raft.replicate`` wait into wire vs follower-fsync vs
    #: follower-CPU.  Pure bookkeeping: never read by the protocol.
    flush_us: float = 0.0
    apply_us: float = 0.0


@dataclasses.dataclass(frozen=True)
class InstallSnapshot:
    """Ship a full state-machine snapshot to a replica whose next entry has
    been compacted away (Raft §7)."""

    term: int
    leader_id: int
    last_index: int
    last_term: int
    blob: object


@dataclasses.dataclass(frozen=True)
class SnapshotReply:
    term: int
    follower_id: int
    last_index: int
