"""One Raft participant (voter or learner) and its event loop."""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceUnavailableError
from repro.raft.log import RaftLog
from repro.raft.messages import (
    AppendEntries,
    AppendReply,
    InstallSnapshot,
    RequestVote,
    SnapshotReply,
    VoteReply,
)
from repro.sim.core import AnyOf, Interrupt
from repro.sim.host import Host
from repro.sim.resources import Store


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"
    LEARNER = "learner"


class NotLeaderError(ServiceUnavailableError):
    """Proposal sent to a non-leader; carries a hint to the real leader."""

    def __init__(self, leader_hint: Optional[int] = None):
        super().__init__("raft leader")
        self.leader_hint = leader_hint


@dataclasses.dataclass
class RaftConfig:
    """Timing and batching knobs (simulated microseconds)."""

    heartbeat_us: float = 10_000.0
    election_timeout_min_us: float = 50_000.0
    election_timeout_max_us: float = 100_000.0
    #: §5.2.3 log batching: aggregate proposals for one fsync.
    batching_enabled: bool = True
    batch_window_us: float = 100.0
    max_batch: int = 64
    #: Max entries shipped per AppendEntries message.
    replication_limit: int = 64
    #: Take a state-machine snapshot and compact the log once this many
    #: entries have been applied since the last snapshot (0 = disabled).
    #: Requires the state machine to implement snapshot()/restore().
    snapshot_threshold: int = 0


class _Poke:
    """Mailbox sentinel used by propose() to wake the node's event loop."""

    __slots__ = ()


_POKE = _Poke()

#: No-op command a fresh leader replicates to commit prior-term entries
#: (Raft §5.4.2: a leader may only count replicas for entries of its own
#: term, so it commits one immediately on election).  Skipped by state
#: machines.
NOOP_COMMAND = ("__raft_noop__",)


class RaftNode:
    """A single Raft replica driving a deterministic state machine.

    ``state_machine`` is any object with ``apply(command) -> result``; every
    replica applies committed entries in log order, so replicas that build
    their state purely from applied commands stay identical (§4).
    """

    def __init__(self, node_id: int, host: Host, group: "RaftGroup",
                 state_machine: Any, config: Optional[RaftConfig] = None,
                 is_learner: bool = False, seed: int = 0):
        self.id = node_id
        self.host = host
        self.sim = host.sim
        self.group = group
        self.state_machine = state_machine
        self.config = config or RaftConfig()
        self.is_learner = is_learner
        self.role = Role.LEARNER if is_learner else Role.FOLLOWER
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.leader_hint: Optional[int] = None
        self.log = RaftLog()
        self.commit_index = 0
        self.last_applied = 0
        self.mailbox = Store(self.sim)
        self._rng = random.Random((seed << 8) | node_id)
        self._votes: set = set()
        self._next_index: Dict[int, int] = {}
        self._match_index: Dict[int, int] = {}
        self._pending: List[Tuple[Any, Any]] = []
        self._waiters: Dict[int, Any] = {}
        #: Blocked-on attribution (tracer-gated): waiter Event -> commit
        #: timeline stamps (proposed / flush_start / flush_end).  The
        #: proposer pops its entry via :meth:`pop_commit_stats` once the
        #: wait resolves; :meth:`_fail_waiters` clears the rest.  Waiter
        #: events carry ``__slots__``, hence this side table.
        self._commit_stats: Dict[Any, Dict[str, Any]] = {}
        #: Occupant label of the batch currently holding the leader's log
        #: fsync (tracer-gated): proposals arriving while a flush is in
        #: progress queued *behind* that batch's op, and the blame matrix
        #: names it.  ``None`` outside a flush.
        self._flushing_label: Optional[Tuple[str, Optional[str]]] = None
        #: Latest successful AppendReply timing per follower id
        #: ``{follower_id: (flush_us, apply_us)}`` (instrument-gated):
        #: feeds the per-replica commit stamps and the replicate-skew
        #: histogram — the residual the gating-follower split can't see.
        self._reply_times: Dict[int, Tuple[float, float]] = {}
        self._election_deadline = self._fresh_election_deadline()
        #: Open ``raft.election`` span (tracer-gated): begun when this node
        #: becomes a candidate, closed when the candidacy resolves (won /
        #: lost / superseded by a fresh election / node stopped).
        self._election_span = None
        self._heartbeat_deadline: Optional[float] = None
        self._flush_deadline: Optional[float] = None
        self._apply_signal = self.sim.event()
        self._readindex_proc = None
        self._stopped = False
        self._snapshot = None  # (last_index, last_term, blob)
        # Metrics.
        self.snapshots_taken = 0
        self.snapshots_installed = 0
        self.proposals = 0
        self.batches_flushed = 0
        self.entries_flushed = 0
        self.elections_started = 0
        self.applied_count = 0
        # The node's event loop is host-local work: pin it to the host's
        # scheduler lane under the lane-sharded kernel.
        self._proc = self.sim.process(self._main_loop(),
                                      name=f"raft-{node_id}", lane=host.lane)

    # -- public API ----------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    def propose(self, command: Any):
        """Queue a command for replication; returns an Event that triggers
        with the state machine's apply() result once committed.

        Must be called on the leader; raises :class:`NotLeaderError`
        otherwise.  Non-blocking: the node's event loop performs the actual
        log append, fsync and replication (batched per §5.2.3).
        """
        if self._stopped or self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_hint)
        waiter = self.sim.event()
        self._pending.append((command, waiter))
        self.proposals += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            # ``label``: the proposing op's own identity (propose runs
            # inline in the proposer's process) — becomes the culprit for
            # later proposals that queue behind this batch's flush.
            # ``queued_behind``: whichever batch held the log fsync when
            # we arrived; None means only the batch window gated us.
            self._commit_stats[waiter] = {
                "proposed": self.sim.now,
                "label": tracer.current_op_label(),
                "queued_behind": self._flushing_label,
            }
        self.mailbox.put(_POKE)
        return waiter

    def pop_commit_stats(self, waiter) -> Optional[Dict[str, Any]]:
        """Claim the commit-timeline stamps recorded for ``waiter``.

        Pure bookkeeping for blocked-on attribution; returns ``None`` when
        tracing was off or the stamps were cleared by a leadership change.
        """
        return self._commit_stats.pop(waiter, None)

    def read_barrier(self):
        """§5.1.3 follower/learner read: learn the leader's commitIndex
        (piggybacked across concurrent readers), then wait until our local
        applyIndex catches up.  Generator; returns the barrier index."""
        if self.role is Role.LEADER:
            return self.commit_index
        leader = self.group.current_leader()
        if leader is None:
            raise ServiceUnavailableError("raft leader")
        if self._readindex_proc is None or self._readindex_proc.triggered:
            self._readindex_proc = self.sim.process(
                self._query_commit_index(leader),
                name=f"readindex-{self.id}")
        target = yield self._readindex_proc
        while self.last_applied < target and not self._stopped:
            yield self._apply_signal
        return target

    def stop(self) -> None:
        """Shut the node down (failure injection / cluster teardown)."""
        self._stopped = True
        self._close_election_span("stopped")
        self._fail_waiters(NotLeaderError(None))
        self._proc.interrupt("stop")

    # -- event loop ------------------------------------------------------------

    def _main_loop(self):
        try:
            pending_get = None
            while not self._stopped:
                if pending_get is None:
                    pending_get = self.mailbox.get()
                if not pending_get.triggered:
                    deadline = self._next_deadline()
                    if deadline is None:
                        yield pending_get
                    else:
                        wait = max(0.0, deadline - self.sim.now)
                        yield AnyOf(self.sim,
                                    [pending_get, self.sim.timeout(wait)])
                if pending_get.triggered:
                    message = pending_get.value
                    pending_get = None
                    yield from self._handle(message)
                yield from self._check_timers()
        except Interrupt:
            return

    def _next_deadline(self) -> Optional[float]:
        candidates = []
        if self.role in (Role.FOLLOWER, Role.CANDIDATE):
            candidates.append(self._election_deadline)
        if self.role is Role.LEADER:
            if self._heartbeat_deadline is not None:
                candidates.append(self._heartbeat_deadline)
            if self._flush_deadline is not None:
                candidates.append(self._flush_deadline)
        return min(candidates) if candidates else None

    def _check_timers(self):
        now = self.sim.now
        if self.role in (Role.FOLLOWER, Role.CANDIDATE):
            if now >= self._election_deadline:
                yield from self._start_election()
        if self.role is Role.LEADER:
            if self._pending and self._flush_deadline is None:
                self._flush_deadline = (
                    now + self.config.batch_window_us
                    if self.config.batching_enabled else now)
            if (self._pending
                    and (now >= (self._flush_deadline or now)
                         or len(self._pending) >= self.config.max_batch)):
                yield from self._flush()
            if self._heartbeat_deadline is not None and now >= self._heartbeat_deadline:
                self._broadcast_append(heartbeat=True)
                self._heartbeat_deadline = now + self.config.heartbeat_us

    def _fresh_election_deadline(self) -> float:
        spread = self._rng.uniform(self.config.election_timeout_min_us,
                                   self.config.election_timeout_max_us)
        return self.sim.now + spread

    # -- elections ----------------------------------------------------------------

    def _start_election(self):
        self.current_term += 1
        self.role = Role.CANDIDATE
        self.voted_for = self.id
        self._votes = {self.id}
        self.elections_started += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            # One span per candidacy, from candidacy to resolution: the
            # vote fsync and RequestVote fan-out nest under it, so a traced
            # failover shows where the unavailability window went.
            self._close_election_span("superseded")
            span = tracer.begin("raft.election", self.sim.now,
                                category="raft", host=self.host.name)
            span.annotate(term=self.current_term, node=self.id)
            self._election_span = span
        self._election_deadline = self._fresh_election_deadline()
        # Persist the vote (term/votedFor are durable Raft state).
        yield from self.host.fsync()
        if len(self.group.voter_ids()) == 1:
            self._become_leader()
            return
        for peer_id in self.group.voter_ids():
            if peer_id != self.id:
                self.group.send(self.id, peer_id, RequestVote(
                    self.current_term, self.id,
                    self.log.last_index, self.log.last_term))

    def _close_election_span(self, outcome: str) -> None:
        """End the open candidacy span, if any (pure bookkeeping)."""
        span = self._election_span
        if span is not None:
            self._election_span = None
            tracer = self.sim.tracer
            if tracer.enabled:
                span.annotate(outcome=outcome)
                tracer.end(span, self.sim.now, ok=outcome == "won")

    def _become_leader(self) -> None:
        self._close_election_span("won")
        self.role = Role.LEADER
        self.leader_hint = self.id
        last = self.log.last_index
        for peer_id in self.group.replica_ids():
            self._next_index[peer_id] = last + 1
            self._match_index[peer_id] = 0
        self._heartbeat_deadline = self.sim.now  # heartbeat immediately
        self._flush_deadline = None
        # Commit a no-op of our own term so committed-but-unapplied entries
        # from previous terms become committable (Raft's term restriction).
        if self.log.last_index > self.commit_index:
            noop_waiter = self.sim.event()
            noop_waiter.defused()
            self._pending.insert(0, (NOOP_COMMAND, noop_waiter))

    def _step_down(self, term: int, leader_hint: Optional[int] = None) -> None:
        self._close_election_span("lost")
        self.current_term = term
        self.voted_for = None
        if not self.is_learner:
            self.role = Role.FOLLOWER
        if leader_hint is not None:
            self.leader_hint = leader_hint
        self._heartbeat_deadline = None
        self._flush_deadline = None
        self._election_deadline = self._fresh_election_deadline()
        self._fail_waiters(NotLeaderError(leader_hint))

    def _fail_waiters(self, error: Exception) -> None:
        for _command, waiter in self._pending:
            if not waiter.triggered:
                waiter.fail(error)
                waiter.defused()
        self._pending.clear()
        for waiter in self._waiters.values():
            if not waiter.triggered:
                waiter.fail(error)
                waiter.defused()
        self._waiters.clear()
        self._commit_stats.clear()

    # -- message handling -------------------------------------------------------------

    def _handle(self, message):
        if isinstance(message, _Poke):
            return
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin("raft." + type(message).__name__,
                                self.sim.now, category="raft",
                                host=self.host.name)
            try:
                yield from self._handle_traced(message)
            finally:
                tracer.end(span, self.sim.now)
            return
        yield from self._handle_traced(message)

    def _handle_traced(self, message):
        yield from self.host.work(self.group.costs.raft_msg_us)
        if isinstance(message, RequestVote):
            yield from self._on_request_vote(message)
        elif isinstance(message, VoteReply):
            self._on_vote_reply(message)
        elif isinstance(message, AppendEntries):
            yield from self._on_append_entries(message)
        elif isinstance(message, AppendReply):
            yield from self._on_append_reply(message)
        elif isinstance(message, InstallSnapshot):
            yield from self._on_install_snapshot(message)
        elif isinstance(message, SnapshotReply):
            self._on_snapshot_reply(message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown raft message {message!r}")

    def _on_request_vote(self, msg: RequestVote):
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = False
        if (not self.is_learner
                and msg.term == self.current_term
                and self.voted_for in (None, msg.candidate_id)
                and self.log.up_to_date(msg.last_log_index, msg.last_log_term)):
            granted = True
            self.voted_for = msg.candidate_id
            self._election_deadline = self._fresh_election_deadline()
            yield from self.host.fsync()  # durable vote
        self.group.send(self.id, msg.candidate_id,
                        VoteReply(self.current_term, self.id, granted))

    def _on_vote_reply(self, msg: VoteReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.CANDIDATE or msg.term != self.current_term:
            return
        if msg.granted:
            self._votes.add(msg.voter_id)
            if len(self._votes) >= self.group.quorum():
                self._become_leader()

    def _on_append_entries(self, msg: AppendEntries):
        if msg.term < self.current_term:
            self.group.send(self.id, msg.leader_id, AppendReply(
                self.current_term, self.id, False, 0))
            return
        if msg.term > self.current_term or self.role is Role.CANDIDATE:
            self._step_down(msg.term, msg.leader_id)
        self.leader_hint = msg.leader_id
        self._election_deadline = self._fresh_election_deadline()
        if not self.log.matches(msg.prev_index, msg.prev_term):
            hint = min(msg.prev_index - 1, self.log.last_index)
            self.group.send(self.id, msg.leader_id, AppendReply(
                self.current_term, self.id, False,
                max(self.log.base_index, hint, 0)))
            return
        appended = self.log.merge(msg.prev_index, msg.entries)
        # Timing piggyback feeds both the tracer's commit-wait split and
        # the telemetry skew histogram; measuring is pure subtraction, so
        # either instrument alone turns it on without changing results.
        timed = self.sim.tracer.enabled or self.sim.telemetry.enabled
        flush_us = apply_us = 0.0
        if appended:
            flush_started = self.sim.now
            yield from self.host.fsync()  # one fsync per shipped batch
            if timed:
                flush_us = self.sim.now - flush_started
        match = msg.prev_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            apply_started = self.sim.now
            yield from self._apply_committed()
            if timed:
                apply_us = self.sim.now - apply_started
        self.group.send(self.id, msg.leader_id, AppendReply(
            self.current_term, self.id, True, match, flush_us, apply_us))

    def _on_append_reply(self, msg: AppendReply):
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        if msg.success:
            self._match_index[msg.follower_id] = max(
                self._match_index.get(msg.follower_id, 0), msg.match_index)
            self._next_index[msg.follower_id] = \
                self._match_index[msg.follower_id] + 1
            if self.sim.tracer.enabled or self.sim.telemetry.enabled:
                self._reply_times[msg.follower_id] = (msg.flush_us,
                                                      msg.apply_us)
            yield from self._advance_commit(gating=msg)
            # Ship any remaining backlog to this follower.
            if self._next_index[msg.follower_id] <= self.log.last_index:
                self._send_append(msg.follower_id)
        else:
            self._next_index[msg.follower_id] = max(1, msg.match_index + 1)
            self._send_append(msg.follower_id)

    # -- leader replication -------------------------------------------------------------

    def _flush(self):
        """Append a batch of pending proposals, fsync once, replicate."""
        size = self.config.max_batch if self.config.batching_enabled else 1
        batch = self._pending[:size]
        del self._pending[:len(batch)]
        for command, waiter in batch:
            entry = self.log.append(self.current_term, command)
            self._waiters[entry.index] = waiter
        self.batches_flushed += 1
        self.entries_flushed += len(batch)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            host = self.host.name
            telemetry.counter("raft.flushes", host).add(self.sim._now)
            telemetry.histogram("raft.batch_entries", host).record(
                self.sim._now, len(batch))
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin("raft.flush", self.sim.now, category="raft",
                                host=self.host.name)
            span.annotate(entries=len(batch))
            stats = self._commit_stats
            # While this fsync holds the log, arriving proposals queue
            # behind the batch's lead op: publish its label as occupant.
            lead = stats.get(batch[0][1]) if stats else None
            self._flushing_label = lead.get("label") if lead else None
            flush_start = self.sim.now
            yield from self.host.fsync()
            flush_end = self.sim.now
            self._flushing_label = None
            tracer.end(span, flush_end)
            if stats:
                for _command, waiter in batch:
                    entry_stats = stats.get(waiter)
                    if entry_stats is not None:
                        entry_stats["flush_start"] = flush_start
                        entry_stats["flush_end"] = flush_end
        else:
            yield from self.host.fsync()
        if not self._pending:
            self._flush_deadline = None
        elif self.config.batching_enabled:
            self._flush_deadline = self.sim.now + self.config.batch_window_us
        else:
            self._flush_deadline = self.sim.now
        yield from self._advance_commit()
        self._broadcast_append()

    def _broadcast_append(self, heartbeat: bool = False) -> None:
        for peer_id in self.group.replica_ids():
            if peer_id != self.id:
                self._send_append(peer_id, allow_empty=heartbeat)

    def _send_append(self, peer_id: int, allow_empty: bool = True) -> None:
        next_index = self._next_index.get(peer_id, self.log.last_index + 1)
        if next_index <= self.log.base_index:
            # The entries this replica needs were compacted away: ship the
            # snapshot instead (Raft's InstallSnapshot path).
            if self._snapshot is not None:
                last_index, last_term, blob = self._snapshot
                self.group.send(self.id, peer_id, InstallSnapshot(
                    self.current_term, self.id, last_index, last_term, blob))
            return
        entries = tuple(self.log.entries_from(
            next_index, self.config.replication_limit))
        if not entries and not allow_empty:
            return
        prev_index = next_index - 1
        prev_term = self.log.term_at(prev_index)
        if prev_term is None:
            prev_index = self.log.base_index
            prev_term = self.log.base_term
        self.group.send(self.id, peer_id, AppendEntries(
            self.current_term, self.id, prev_index, prev_term,
            entries, self.commit_index))

    def _advance_commit(self, gating: Optional[AppendReply] = None):
        """Advance commitIndex to the highest N replicated on a voter
        majority with log[N].term == currentTerm, then apply.

        ``gating`` is the AppendReply whose arrival triggered this advance
        (None when called from the leader's own flush).  When its reply
        carries follower timing and the commit point moves, those times are
        stamped into the newly committed entries' commit stats so the
        proposer can split its replication wait into wire vs follower work.
        """
        if self.role is not Role.LEADER:
            return
        old_commit = self.commit_index
        voters = self.group.voter_ids()
        for candidate in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(candidate) != self.current_term:
                break
            replicated = sum(
                1 for vid in voters
                if vid == self.id or self._match_index.get(vid, 0) >= candidate)
            if replicated >= self.group.quorum():
                self.commit_index = candidate
                break
        if gating is not None and self.commit_index > old_commit:
            if self._commit_stats and self.sim.tracer.enabled:
                follower = self.group.nodes.get(gating.follower_id)
                follower_host = (follower.host.name if follower is not None
                                 else f"raft-{gating.follower_id}")
                # Per-replica view: every follower's latest flush/apply,
                # not just the gating one's, so the replicate remainder's
                # residual skew is measurable from the stats dict.
                replicas = {}
                for fid, (f_us, a_us) in self._reply_times.items():
                    node = self.group.nodes.get(fid)
                    name = (node.host.name if node is not None
                            else f"raft-{fid}")
                    replicas[name] = (f_us, a_us)
                for index in range(old_commit + 1, self.commit_index + 1):
                    waiter = self._waiters.get(index)
                    stats = (self._commit_stats.get(waiter)
                             if waiter is not None else None)
                    if stats is not None:
                        stats["follower_flush_us"] = gating.flush_us
                        stats["follower_apply_us"] = gating.apply_us
                        stats["follower_host"] = follower_host
                        stats["replica_times"] = replicas
            telemetry = self.sim.telemetry
            if telemetry.enabled and self._reply_times:
                # Residual replica skew: how far the slowest known
                # follower trails the gating one (flush + apply).  This
                # is the part of ``raft.replicate`` no piggyback splits.
                gate = gating.flush_us + gating.apply_us
                slowest = max(f + a for f, a in self._reply_times.values())
                telemetry.histogram(
                    "raft.replicate.skew_us", self.host.name).record(
                    self.sim._now, max(0.0, slowest - gate))
        yield from self._apply_committed()

    def _apply_committed(self):
        """Apply every committed-but-unapplied entry to the state machine."""
        applied_any = False
        telemetry = self.sim.telemetry
        if telemetry.enabled and self.last_applied < self.commit_index:
            # Apply lag: how far the state machine trails the commit point
            # when an apply round starts (batching + fsync pressure show up
            # here before they show up in client latency).
            telemetry.histogram("raft.apply_lag", self.host.name).record(
                self.sim._now, self.commit_index - self.last_applied)
        tracer = self.sim.tracer
        if tracer.enabled and self.last_applied < self.commit_index:
            span = tracer.begin("raft.apply", self.sim.now, category="raft",
                                host=self.host.name)
            span.annotate(entries=self.commit_index - self.last_applied)
        else:
            span = None
        while self.last_applied < self.commit_index:
            entry = self.log.entry(self.last_applied + 1)
            yield from self.host.work(self.group.costs.raft_apply_us)
            if entry.command == NOOP_COMMAND:
                result = None
            else:
                result = self.state_machine.apply(entry.command)
            self.last_applied += 1
            self.applied_count += 1
            applied_any = True
            waiter = self._waiters.pop(entry.index, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(result)
        if span is not None:
            tracer.end(span, self.sim.now)
        if applied_any:
            signal = self._apply_signal
            self._apply_signal = self.sim.event()
            signal.succeed(self.last_applied)
            yield from self._maybe_snapshot()

    def _maybe_snapshot(self):
        """Compact the log once enough entries have been applied (§7 of
        the Raft paper); keeps long-lived IndexNodes' logs bounded."""
        threshold = self.config.snapshot_threshold
        if threshold <= 0 or not hasattr(self.state_machine, "snapshot"):
            return
        if self.last_applied - self.log.base_index < threshold:
            return
        blob = self.state_machine.snapshot()
        term = self.log.term_at(self.last_applied)
        self._snapshot = (self.last_applied, term, blob)
        self.log.compact_to(self.last_applied, term)
        self.snapshots_taken += 1
        # A snapshot is a durable on-disk artifact.
        yield from self.host.fsync()

    def _on_install_snapshot(self, msg: InstallSnapshot):
        if msg.term < self.current_term:
            self.group.send(self.id, msg.leader_id, SnapshotReply(
                self.current_term, self.id, 0))
            return
        if msg.term > self.current_term or self.role is Role.CANDIDATE:
            self._step_down(msg.term, msg.leader_id)
        self.leader_hint = msg.leader_id
        self._election_deadline = self._fresh_election_deadline()
        if msg.last_index > self.last_applied:
            self.state_machine.restore(msg.blob)
            self.log.reset_to(msg.last_index, msg.last_term)
            self.commit_index = msg.last_index
            self.last_applied = msg.last_index
            self.snapshots_installed += 1
            yield from self.host.fsync()
            signal = self._apply_signal
            self._apply_signal = self.sim.event()
            signal.succeed(self.last_applied)
        self.group.send(self.id, msg.leader_id, SnapshotReply(
            self.current_term, self.id, self.last_applied))

    def _on_snapshot_reply(self, msg: SnapshotReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.last_index == 0:
            return
        self._match_index[msg.follower_id] = max(
            self._match_index.get(msg.follower_id, 0), msg.last_index)
        self._next_index[msg.follower_id] = msg.last_index + 1
        if self._next_index[msg.follower_id] <= self.log.last_index:
            self._send_append(msg.follower_id)

    # -- follower read plumbing ------------------------------------------------------------

    def _query_commit_index(self, leader: "RaftNode"):
        """One batched commitIndex query: an RTT to the leader."""
        if self.sim._lane_mode:
            there, back = leader.host.lane, self.host.lane
        else:
            there = back = None
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin("raft.readindex", self.sim.now,
                                category="raft", host=self.host.name)
            sent_us = self.sim._now
            yield from self.group.network.transit(there)
            target = leader.commit_index
            yield from self.group.network.transit(back)
            tracer.charge("wire", self.sim._now - sent_us, self.host.name)
            tracer.end(span, self.sim.now)
        else:
            yield from self.group.network.transit(there)
            target = leader.commit_index
            yield from self.group.network.transit(back)
        return target
