"""Wiring for one Raft replication group (IndexNode's availability story)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ServiceUnavailableError
from repro.raft.node import RaftConfig, RaftNode, Role
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network


class RaftGroup:
    """A set of voter replicas plus optional learner (read) replicas.

    ``state_machine_factory(node_id)`` builds one state machine per replica;
    since every replica applies the same committed commands in order, the
    machines converge (the paper's "identical in-memory data structures,
    independently constructed by each node").
    """

    def __init__(self, sim: Simulator, network: Network, hosts: List[Host],
                 state_machine_factory: Callable[[int], object],
                 num_voters: int, num_learners: int = 0,
                 config: Optional[RaftConfig] = None,
                 costs: Optional[CostModel] = None, seed: int = 0):
        if num_voters < 1:
            raise ValueError("need at least one voter")
        if len(hosts) != num_voters + num_learners:
            raise ValueError("host count must equal voters + learners")
        self.sim = sim
        self.network = network
        self.costs = costs or CostModel()
        self.config = config or RaftConfig()
        self.nodes: Dict[int, RaftNode] = {}
        self._voter_ids = list(range(num_voters))
        self._learner_ids = list(range(num_voters, num_voters + num_learners))
        for node_id, host in enumerate(hosts):
            self.nodes[node_id] = RaftNode(
                node_id, host, self,
                state_machine_factory(node_id),
                config=self.config,
                is_learner=node_id >= num_voters,
                seed=seed)
        self.messages_sent = 0

    # -- membership ------------------------------------------------------------

    def voter_ids(self) -> List[int]:
        return list(self._voter_ids)

    def learner_ids(self) -> List[int]:
        return list(self._learner_ids)

    def replica_ids(self) -> List[int]:
        return self._voter_ids + self._learner_ids

    def quorum(self) -> int:
        return len(self._voter_ids) // 2 + 1

    # -- transport ----------------------------------------------------------------

    def send(self, from_id: int, to_id: int, message) -> None:
        """Asynchronous message delivery with network latency."""
        self.messages_sent += 1
        self.sim.process(self._deliver(to_id, message),
                         name=f"raft-msg-{from_id}-{to_id}")

    def _deliver(self, to_id: int, message):
        # Cross-lane edge: land the flight on the destination replica's
        # lane so mailbox processing batches with that host's events.
        # (Membership can change mid-flight; the drop check below re-looks
        # the target up at arrival time.)
        target = self.nodes.get(to_id)
        lane = (target.host.lane
                if self.sim._lane_mode and target is not None else None)
        tracer = self.sim.tracer
        if tracer.enabled:
            # Attribute the flight to the destination replica's host so
            # replication traffic shows up against the IndexNode servers
            # in cost-center and critical-path views (an undelivered
            # message to a stopped node keeps the host label: the wire
            # time was spent regardless).
            host = target.host.name if target is not None else None
            span = tracer.begin("raft.msg:" + type(message).__name__,
                                self.sim.now, category="raft", host=host)
            sent_us = self.sim._now
            yield from self.network.transit(lane)
            tracer.charge("wire", self.sim._now - sent_us, host)
        else:
            span = None
            yield from self.network.transit(lane)
        target = self.nodes.get(to_id)
        dropped = target is None or target._stopped or target.host.crashed
        if span is not None:
            span.annotate(to=to_id, dropped=dropped)
            tracer.end(span, self.sim.now, ok=not dropped)
        if dropped:
            return  # dropped on the floor, like a real network
        target.mailbox.put(message)

    # -- leadership helpers ------------------------------------------------------------

    def current_leader(self) -> Optional[RaftNode]:
        leaders = [n for n in self.nodes.values()
                   if n.role is Role.LEADER and not n._stopped]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term)

    def wait_for_leader(self, poll_us: float = 5_000.0,
                        timeout_us: float = 10_000_000.0):
        """Generator: poll until a leader exists; returns the leader node."""
        deadline = self.sim.now + timeout_us
        while self.sim.now < deadline:
            leader = self.current_leader()
            if leader is not None:
                return leader
            yield self.sim.timeout(poll_us)
        raise ServiceUnavailableError("raft leader (election timed out)")

    def leader_or_raise(self) -> RaftNode:
        leader = self.current_leader()
        if leader is None:
            raise ServiceUnavailableError("raft leader")
        return leader

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()

    # -- fault injection ----------------------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        node = self.nodes[node_id]
        node.host.crash()
        node.stop()

    @property
    def total_fsyncs(self) -> int:
        return sum(n.host.fsync_count for n in self.nodes.values())
