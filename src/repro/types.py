"""Core value types shared across TafDB, IndexNode and the baselines.

The paper splits directory metadata into *access metadata* (what IndexNode
holds: pid, name, id, permission, lock bit — roughly 80 bytes per directory)
and *attribute metadata* (what only TafDB holds: timestamps, link count,
entry count, owner...).  The types here mirror that division.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

#: Inode id of the namespace root directory ("/").
ROOT_ID = 1

#: First id handed out for user-created entries.
FIRST_USER_ID = 2


class EntryKind(enum.Enum):
    """Whether a namespace entry is a directory or an object."""

    DIRECTORY = "dir"
    OBJECT = "obj"


class Permission(enum.IntFlag):
    """Simplified per-entry permission mask.

    The Lazy-Hybrid scheme the paper adopts intersects permissions along the
    path to compute a unified path permission, so an IntFlag whose
    intersection (``&``) is meaningful is exactly what we need.
    """

    NONE = 0
    READ = 1
    WRITE = 2
    EXECUTE = 4
    ALL = READ | WRITE | EXECUTE


@dataclasses.dataclass(frozen=True)
class AccessMeta:
    """Access metadata for one directory — the IndexNode's IndexTable row.

    This is the ~80-byte record of Figure 6: (pid, dirname) is the key and
    (id, permission, lock bit) the value.  ``lock_owner`` carries the
    client-generated rename UUID so retried loop-detection RPCs recognise
    their own lock (§5.3 idempotence).
    """

    pid: int
    name: str
    id: int
    permission: Permission = Permission.ALL
    locked: bool = False
    lock_owner: Optional[str] = None

    def with_lock(self, owner: str) -> "AccessMeta":
        return dataclasses.replace(self, locked=True, lock_owner=owner)

    def without_lock(self) -> "AccessMeta":
        return dataclasses.replace(self, locked=False, lock_owner=None)


@dataclasses.dataclass
class AttrMeta:
    """Attribute metadata stored only in TafDB.

    ``link_count`` / ``entry_count`` are the fields concurrent mkdir/rmdir in
    the same parent fight over; delta records (§5.2.1) exist to make those
    increments conflict-free.
    """

    id: int
    kind: EntryKind
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    link_count: int = 0
    entry_count: int = 0
    owner: str = "root"
    permission: Permission = Permission.ALL

    def copy(self) -> "AttrMeta":
        return dataclasses.replace(self)


@dataclasses.dataclass(frozen=True)
class DirentKey:
    """Primary key of the metadata table: (parent id, entry name).

    TafDB partitions by ``pid`` so entries of one directory co-locate on one
    shard (§2.3), which is what makes single-shard fast-paths possible and
    cross-directory operations distributed.
    """

    pid: int
    name: str


class OpResult(int):
    """Typed result of a mutating client operation.

    Behaves as the inode id of the affected entry (it *is* an ``int``, so
    existing ``stat.id == client.create(...)`` comparisons keep working) and
    additionally carries the per-operation measurements the client recorded:

    * ``rpcs`` — RPC round trips the operation performed (Table 1 counting);
    * ``retries`` — transaction/rename retries absorbed before success;
    * ``latency_us`` — simulated end-to-end latency in microseconds.
    """

    def __new__(cls, inode_id: int, rpcs: int = 0, retries: int = 0,
                latency_us: float = 0.0) -> "OpResult":
        self = super().__new__(cls, inode_id)
        self.rpcs = rpcs
        self.retries = retries
        self.latency_us = latency_us
        return self

    @property
    def inode_id(self) -> int:
        return int(self)

    def __repr__(self) -> str:
        return (f"OpResult(inode_id={int(self)}, rpcs={self.rpcs}, "
                f"retries={self.retries}, latency_us={self.latency_us})")

    def to_wire(self) -> dict:
        """JSON-safe encoding for the live wire protocol (see
        ``repro/runtime/wire.py``; format pinned by the golden-file test)."""
        return {"inode_id": int(self), "rpcs": self.rpcs,
                "retries": self.retries, "latency_us": self.latency_us}

    @classmethod
    def from_wire(cls, payload: dict) -> "OpResult":
        return cls(payload["inode_id"], rpcs=payload.get("rpcs", 0),
                   retries=payload.get("retries", 0),
                   latency_us=payload.get("latency_us", 0.0))


@dataclasses.dataclass(frozen=True)
class StatResult:
    """What objstat/dirstat return to the application."""

    path: str
    id: int
    kind: EntryKind
    size: int
    ctime: float
    mtime: float
    link_count: int
    entry_count: int
    permission: Permission

    @property
    def is_dir(self) -> bool:
        return self.kind is EntryKind.DIRECTORY


@dataclasses.dataclass(frozen=True)
class ResolvedPath:
    """Result of path resolution: the directory id the final component lives
    in, plus the aggregated permission mask along the prefix."""

    parent_id: int
    name: str
    permission: Permission
    depth: int


def make_stat(path: str, attr: AttrMeta) -> StatResult:
    """Build a client-facing stat result from a TafDB attribute record."""
    return StatResult(
        path=path,
        id=attr.id,
        kind=attr.kind,
        size=attr.size,
        ctime=attr.ctime,
        mtime=attr.mtime,
        link_count=attr.link_count,
        entry_count=attr.entry_count,
        permission=attr.permission,
    )
