"""``LiveClient``: the MantleClient surface over a real TCP cluster.

Where :class:`~repro.core.api.MantleClient` drives a simulated deployment
in-process, ``LiveClient`` speaks the typed op registry
(:mod:`repro.ops`) over the live wire protocol to a ``mantle-serve`` proxy:

    with LiveClient("127.0.0.1:7400") as client:
        client.mkdir("/a")
        client.create("/a/obj")
        print(client.objstat("/a/obj"))

The method surface, result types (``OpResult``/``StatResult``), exception
types and per-op metrics mirror the simulated client, so benchmark and
test code can be parameterised over either — the agreement suite and
``mantle-exp live fig12`` do exactly that.  Latencies are wallclock
microseconds (the live runtime's clock), on the same scale simulated
latencies are reported in.

The client owns a private event loop on a daemon thread; the public
methods are ordinary blocking calls safe to use from synchronous code.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Iterable, List, Tuple

from repro.core.api import BatchResult
from repro.errors import MetadataError, NoSuchPathError
from repro.ops import (
    Create,
    Delete,
    DirStat,
    Mkdir,
    Op,
    ObjStat,
    ReadDir,
    Rename,
    Rmdir,
    SetAttr,
)
from repro.paths import ancestors
from repro.paths import normalize as paths_normalize
from repro.runtime.aio import DEFAULT_RPC_TIMEOUT_S, RpcConnection
from repro.sim.stats import MetricSet, OpContext
from repro.sim.trace import CAT_OP, NULL_TRACER
from repro.types import OpResult, Permission, StatResult


class _TaskKeyed:
    """Binds a tracer's span stacks to the client's running asyncio task
    (the client-side analogue of ``sim._active_process``), so concurrent
    ``batch()`` ops keep separate stacks."""

    @property
    def _active_process(self):
        try:
            return asyncio.current_task()
        except RuntimeError:
            return None


class LiveClient:
    """Blocking client for a live Mantle proxy endpoint.

    Pass a :class:`~repro.sim.trace.Tracer` to root every op's
    cross-process span tree at the client: each ``perform`` opens an
    ``op``-category span (wall-clock, ``PROCESS_NAME`` process), ships its
    span id as trace context on the wire, and charges the round trip minus
    server time as wire cost — mirroring what the simulated client's op
    root plus ``Network.rpc`` record.
    """

    #: Trace-context process name for client-side spans.
    PROCESS_NAME = "client"

    def __init__(self, endpoint: str,
                 rpc_timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
                 tracer=None):
        self.endpoint = endpoint
        self.rpc_timeout_s = rpc_timeout_s
        self.metrics = MetricSet()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            self.tracer.bind(_TaskKeyed())
        self._epoch_us = time.time() * 1e6
        self._t0 = time.monotonic()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name=f"live-client-{endpoint}",
            daemon=True)
        self._thread.start()
        self._connection = RpcConnection(endpoint)
        self._closed = False

    @property
    def now_us(self) -> float:
        """Wallclock microseconds since client construction."""
        return (time.monotonic() - self._t0) * 1e6

    def trace_snapshot(self) -> dict:
        """This client's span buffer in the live snapshot format."""
        from repro.runtime.obs import snapshot_from_tracer

        return snapshot_from_tracer(self.PROCESS_NAME, self.tracer,
                                    epoch_us=self._epoch_us,
                                    now_us=self.now_us, clock="wallclock")

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self._loop.close()

    def _submit(self, coro) -> Any:
        if self._closed:
            coro.close()
            raise RuntimeError("LiveClient is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result()

    # -- op plumbing ---------------------------------------------------------

    async def _perform_async(self, op: Op) -> Tuple[Any, OpContext]:
        tracer = self.tracer
        if not tracer.enabled:
            payload = await self._connection.call(
                "perform", (op.to_wire(),), {}, timeout_s=self.rpc_timeout_s)
        else:
            started = self.now_us
            span = tracer.begin(op.name, started, category=CAT_OP,
                                host=self.PROCESS_NAME)
            trace_ctx = {"proc": self.PROCESS_NAME, "span": span.span_id}
            ok = False
            try:
                payload, meta = await self._connection.call(
                    "perform", (op.to_wire(),), {},
                    timeout_s=self.rpc_timeout_s, trace=trace_ctx,
                    with_meta=True)
                ok = True
            finally:
                now = self.now_us
                if ok:
                    srv_us = meta.get("srv_us", 0.0)
                    tracer.charge("wire", max(0.0, (now - started) - srv_us),
                                  self.endpoint)
                tracer.end(span, now, ok=ok)
        ctx = OpContext(op.name)
        ctx.rpcs = payload.get("rpcs", 0)
        ctx.retries = payload.get("retries", 0)
        ctx.start = 0.0
        ctx.finish = payload.get("latency_us", 0.0)
        return payload.get("result"), ctx

    def _run_ctx(self, op: Op) -> Tuple[Any, OpContext]:
        try:
            result, ctx = self._submit(self._perform_async(op))
        except MetadataError:
            ctx = OpContext(op.name)
            self.metrics.record_failure(ctx)
            raise
        self.metrics.record(ctx)
        return result, ctx

    def _run(self, op: Op) -> Any:
        return self._run_ctx(op)[0]

    def _run_mutation(self, op: Op) -> OpResult:
        result, ctx = self._run_ctx(op)
        return OpResult(result, rpcs=ctx.rpcs, retries=ctx.retries,
                        latency_us=ctx.latency)

    def perform(self, op: Op) -> Any:
        """Run one typed op; mutations come back as :class:`OpResult`."""
        result, ctx = self._run_ctx(op)
        if isinstance(result, int) and not isinstance(result, bool):
            return OpResult(result, rpcs=ctx.rpcs, retries=ctx.retries,
                            latency_us=ctx.latency)
        return result

    # -- namespace operations (mirrors MantleClient) -------------------------

    def mkdir(self, path: str, parents: bool = False) -> OpResult:
        if parents:
            chain = ancestors(paths_normalize(path))[1:]
            missing: List[str] = []
            for ancestor in reversed(chain):
                try:
                    self.dirstat(ancestor)
                    break
                except NoSuchPathError:
                    missing.append(ancestor)
                except MetadataError:
                    break
            for ancestor in reversed(missing):
                self._run_mutation(Mkdir(ancestor))
        return self._run_mutation(Mkdir(path))

    def rmdir(self, path: str) -> OpResult:
        return self._run_mutation(Rmdir(path))

    def create(self, path: str, size: int = 0) -> OpResult:
        del size
        return self._run_mutation(Create(path))

    def delete(self, path: str) -> OpResult:
        return self._run_mutation(Delete(path))

    def objstat(self, path: str) -> StatResult:
        return self._run(ObjStat(path))

    def dirstat(self, path: str) -> StatResult:
        return self._run(DirStat(path))

    def stat(self, path: str) -> StatResult:
        try:
            return self.objstat(path)
        except MetadataError:
            return self.dirstat(path)

    def listdir(self, path: str) -> List[str]:
        return self._run(ReadDir(path))

    def rename(self, src: str, dst: str) -> OpResult:
        return self._run_mutation(Rename(src, dst))

    def setattr(self, path: str, permission: Permission) -> StatResult:
        return self._run(SetAttr(path, permission))

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except MetadataError:
            return False

    def ping(self) -> dict:
        """Round trip a no-op frame (connectivity check)."""
        return self._submit(self._connection.call(
            "ping", (), {}, timeout_s=self.rpc_timeout_s))

    # -- batching ------------------------------------------------------------

    def batch(self, ops: Iterable[Op]) -> List[BatchResult]:
        """Run several ops concurrently over the multiplexed connection.

        Like the simulated client's ``batch``, per-op failures land in
        ``BatchResult.error`` instead of raising, and all ops are in flight
        together (distinct request ids on one TCP connection).
        """
        items = [BatchResult(op) for op in ops]

        async def run_all():
            async def run_one(item: BatchResult):
                try:
                    result, ctx = await self._perform_async(item.op)
                except MetadataError as exc:
                    item.error = exc
                    self.metrics.record_failure(OpContext(item.op.name))
                    return
                if isinstance(result, int) and not isinstance(result, bool):
                    result = OpResult(result, rpcs=ctx.rpcs,
                                      retries=ctx.retries,
                                      latency_us=ctx.latency)
                item.result = result
                self.metrics.record(ctx)

            await asyncio.gather(*(run_one(item) for item in items))

        if items:
            self._submit(run_all())
        return items

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._connection.close(), self._loop)
            future.result(timeout=5)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
