"""Live deployment assembly: the same Mantle code as real asyncio services.

The simulator runs Mantle's state machines (``ShardState``,
``IndexNodeState``) and orchestration (``MantleProxy``, ``TafDBClient``)
under a DES kernel.  This module re-hosts the *identical* classes in real
processes:

* :class:`LiveSimFacade` duck-types the handful of ``Simulator`` attributes
  domain code reads (``now``/``_now``, constructor-injected
  tracer/telemetry instances fed by the wall clock, and the ``runtime``
  the seam resolves) — so ``Server.dispatch``, ``TafDBClient`` and
  ``MetadataSystem.perform`` run unmodified, instrumentation included;
* :class:`LiveHost` stands in for ``sim.host.Host``: never crashed, and its
  "disk" is a real write-ahead file fsynced on a worker thread;
* :class:`SoloRaft` is the live IndexNode's single-node replicated log — a
  durable JSONL append before every apply, the degenerate (but correctly
  ordered and durable) Raft a one-replica group is;
* the three ``build_*_role`` functions assemble each ``mantle-serve``
  process; :class:`InProcessCluster` hosts all three roles on one event
  loop (real localhost TCP) for tests, and :class:`ProcessCluster` spawns
  them as actual OS processes with a READY handshake.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.baselines.base import IdAllocator, MetadataSystem
from repro.core.config import MantleConfig
from repro.core.proxy import MantleProxy
from repro.runtime.aio import AsyncioRuntime, RemoteService, WireServer
from repro.sim.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.tafdb.client import TafDBClient
from repro.tafdb.contention import ContentionRegistry
from repro.tafdb.partition import Partitioner
from repro.tafdb.rows import attr_key
from repro.tafdb.shard import WriteIntent
from repro.types import ROOT_ID, AttrMeta, EntryKind


def build_observability(config: MantleConfig, process_name: str,
                        force_trace: bool = False,
                        force_telemetry: bool = False):
    """Resolve (tracer, telemetry) for one live process.

    The same ``MantleConfig.tracing``/``telemetry`` flags that instrument
    a simulated deployment instrument a live one; ``force_*`` are the CLI
    overrides (``mantle-serve --trace/--telemetry``).  Disabled layers get
    the shared null singletons, preserving the zero-cost-off contract.
    """
    del process_name  # reserved for future per-role capacity tuning
    tracer = Tracer() if (config.tracing or force_trace) else NULL_TRACER
    telemetry = (Telemetry(window_us=config.telemetry_window_us)
                 if (config.telemetry or force_telemetry)
                 else NULL_TELEMETRY)
    return tracer, telemetry


class LiveSimFacade:
    """The ``sim`` object live code sees: a wallclock plus this process's
    tracer/telemetry, with the :class:`AsyncioRuntime` on the attribute
    the runtime seam resolves.

    Instrumentation is **constructor-injected** (defaulting to the
    runtime's own instances, which default to the null singletons) — the
    facade never reassigns shared globals, so two facades in one process
    can carry different tracers and a test can hand in its own.  The
    tracer's span stacks are keyed by :attr:`_active_process`: live, the
    "process" a charge belongs to is the asyncio task serving the
    request, which is exactly the role ``sim._active_process`` plays for
    simulated processes.
    """

    def __init__(self, runtime: AsyncioRuntime, tracer=None, telemetry=None):
        self.runtime = runtime
        self.tracer = tracer if tracer is not None else runtime.tracer
        self.telemetry = (telemetry if telemetry is not None
                          else runtime.telemetry)
        if self.tracer.enabled:
            self.tracer.bind(self)

    @property
    def now(self) -> float:
        return self.runtime.now

    @property
    def _now(self) -> float:
        return self.runtime.now

    @property
    def _active_process(self):
        """The tracer's span-stack key: the currently running task."""
        try:
            return asyncio.current_task()
        except RuntimeError:
            return None


class LiveHost:
    """A real machine's stand-in for the simulated ``Host``.

    ``do_fsync`` is what ``AsyncioRuntime.fsync`` offloads to a worker
    thread: an append plus a real ``os.fsync`` on this host's WAL file —
    the durability point the simulator charges ``db_commit_sync_us`` for.
    """

    def __init__(self, sim: LiveSimFacade, name: str,
                 wal_dir: Optional[str] = None):
        self.sim = sim
        self.name = name
        self.crashed = False
        self.lane = None
        self.fsyncs = 0
        self._wal_path = None
        self._wal = None
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
            self._wal_path = os.path.join(wal_dir, f"{name}.wal")
            self._wal = open(self._wal_path, "ab")

    def do_fsync(self) -> None:
        self.fsyncs += 1
        if self._wal is not None:
            self._wal.write(b"C\n")  # commit marker
            self._wal.flush()
            os.fsync(self._wal.fileno())

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


class SoloRaft:
    """Single-node durable log backing the live IndexNode.

    ``commit`` appends the command to a JSONL log, fsyncs it off-loop, then
    applies it to the state machine — the ordering and durability contract
    the simulated Raft group provides, minus replication (the live smoke
    cluster runs one IndexNode replica).  Always leader; ``read_barrier``
    is a no-op generator for the same reason.
    """

    is_leader = True
    leader_hint = None

    def __init__(self, host: LiveHost, state_machine,
                 log_path: Optional[str] = None):
        self.host = host
        self.state_machine = state_machine
        self.commits = 0
        self._log = open(log_path, "ab") if log_path else None
        self._lock = threading.Lock()

    def _append_durable(self, command) -> None:
        from repro.runtime import wire
        if self._log is None:
            return
        record = json.dumps(wire.to_jsonable(tuple(command)),
                            separators=(",", ":")).encode() + b"\n"
        with self._lock:
            self._log.write(record)
            self._log.flush()
            os.fsync(self._log.fileno())

    async def commit(self, command):
        loop = asyncio.get_running_loop()
        sim = self.host.sim
        tracer = sim.tracer
        telemetry = sim.telemetry
        if not tracer.enabled and not telemetry.enabled:
            await loop.run_in_executor(None, self._append_durable, command)
            self.commits += 1
            return self.state_machine.apply(command)
        # Instrumented commit: the same raft.flush / raft.apply spans the
        # simulated leader opens, with wall-clock durations — what lets
        # the differential report align live commits against the modelled
        # fsync/apply costs.
        host = self.host.name
        flush_started = sim.now
        if tracer.enabled:
            span = tracer.begin("raft.flush", flush_started, category="raft",
                                host=host)
            span.annotate(entries=1)
        await loop.run_in_executor(None, self._append_durable, command)
        flush_ended = sim.now
        if tracer.enabled:
            tracer.charge("fsync", flush_ended - flush_started, host)
            tracer.end(span, flush_ended)
        if telemetry.enabled:
            telemetry.counter("raft.flushes", host).add(flush_ended)
            telemetry.counter("host.disk_busy_us", host,
                              capacity=1.0).add_interval(
                flush_started, flush_ended)
        self.commits += 1
        if not tracer.enabled:
            return self.state_machine.apply(command)
        apply_started = sim.now
        span = tracer.begin("raft.apply", apply_started, category="raft",
                            host=host)
        span.annotate(entries=1)
        try:
            result = self.state_machine.apply(command)
        finally:
            now = sim.now
            tracer.charge("cpu", now - apply_started, host)
            tracer.end(span, now)
        return result

    def read_barrier(self):
        return
        yield  # pragma: no cover

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None


# -- role builders -----------------------------------------------------------

def build_tafdb_role(config: MantleConfig, runtime: AsyncioRuntime,
                     wal_dir: Optional[str] = None):
    """One live TafDB server process holding every shard.

    The live smoke cluster maps all shards onto one server; shard *count*
    (and therefore 1PC-vs-2PC routing) still matches the simulated
    configuration, which is what the agreement suite compares.
    """
    from repro.tafdb.server import DBServer

    facade = LiveSimFacade(runtime)
    costs = config.effective_costs()
    host = LiveHost(facade, "tafdb-0", wal_dir=wal_dir)
    partitioner = Partitioner(config.num_db_shards, 1)
    server = DBServer(host, partitioner.shards_on_server(0), costs)
    # Bootstrap the namespace root exactly as MantleSystem._install_root
    # does for the simulated deployment.
    root_shard = partitioner.shard_of(ROOT_ID)
    server.shard(root_shard).execute("bootstrap-root", [WriteIntent(
        attr_key(ROOT_ID), "insert",
        AttrMeta(id=ROOT_ID, kind=EntryKind.DIRECTORY))])
    return server


def build_indexnode_role(config: MantleConfig, runtime: AsyncioRuntime,
                         wal_dir: Optional[str] = None):
    """One live IndexNode process: real state machine over a SoloRaft log."""
    from repro.indexnode.server import IndexNodeService
    from repro.indexnode.state import IndexNodeState

    facade = LiveSimFacade(runtime)
    costs = config.effective_costs()
    host = LiveHost(facade, "indexnode-0", wal_dir=wal_dir)
    state = IndexNodeState(cache_k=config.path_cache_k,
                           cache_enabled=config.enable_path_cache,
                           root_id=ROOT_ID)
    log_path = None
    if wal_dir is not None:
        os.makedirs(wal_dir, exist_ok=True)
        log_path = os.path.join(wal_dir, "indexnode-raft.jsonl")
    node = SoloRaft(host, state, log_path=log_path)
    return IndexNodeService(host, node, state, costs, start_purger=False)


class LiveTafDB:
    """Proxy-side view of the TafDB deployment: remote stubs + the shared
    contention registry (process-local live, exactly as shared-object state
    is cluster-internal in the simulator)."""

    def __init__(self, facade: LiveSimFacade, runtime: AsyncioRuntime,
                 config: MantleConfig, services: List[RemoteService]):
        self._facade = facade
        self._runtime = runtime
        self.costs = config.effective_costs()
        self.partitioner = Partitioner(config.num_db_shards, len(services))
        self.services = services
        self.contention = ContentionRegistry(
            threshold=config.delta_activation_threshold,
            window_us=config.delta_activation_window_us,
            enabled=config.enable_delta_records)

    def client(self, client_id: Optional[int] = None) -> TafDBClient:
        return TafDBClient(self._facade, None, self.partitioner,
                           self.services, self.costs, client_id=client_id,
                           runtime=self._runtime)


class LiveMantleService(MetadataSystem):
    """The proxy process's service object: real ``MantleProxy`` instances
    orchestrating over remote TafDB/IndexNode stubs.

    Subclasses :class:`MetadataSystem`, so ``perform(op)`` — including its
    phase stamping and typed-op dispatch — is byte-for-byte the code the
    simulator runs.
    """

    name = "mantle-live"

    def __init__(self, config: MantleConfig, runtime: AsyncioRuntime,
                 tafdb_services: List[RemoteService],
                 index_service: RemoteService,
                 wal_dir: Optional[str] = None):
        facade = LiveSimFacade(runtime)
        super().__init__(facade, None)  # resolves runtime from the facade
        self.config = config
        self.costs = config.effective_costs()
        self.namespace = "default"
        self.root_id = ROOT_ID
        self._wal_dir = wal_dir
        self.tafdb = LiveTafDB(facade, runtime, config, tafdb_services)
        self._index_service = index_service
        self.ids = IdAllocator(start=ROOT_ID + 1)
        self.proxies = [MantleProxy(self, i)
                        for i in range(config.num_proxies)]
        self._proxy_rr = 0

    # -- the service surface MantleProxy consumes ---------------------------

    def proxy_host(self, proxy_id: int) -> LiveHost:
        return LiveHost(self.sim, f"proxy-{proxy_id}", wal_dir=self._wal_dir)

    def leader_service(self) -> RemoteService:
        return self._index_service

    def lookup_services(self) -> List[RemoteService]:
        return [self._index_service]

    def proxy(self) -> MantleProxy:
        self._proxy_rr += 1
        return self.proxies[self._proxy_rr % len(self.proxies)]

    # -- MetadataSystem operations -------------------------------------------

    def op_create(self, path, ctx):
        result = yield from self.proxy().op_create(path, ctx=ctx)
        return result

    def op_delete(self, path, ctx):
        result = yield from self.proxy().op_delete(path, ctx=ctx)
        return result

    def op_objstat(self, path, ctx):
        result = yield from self.proxy().op_objstat(path, ctx=ctx)
        return result

    def op_dirstat(self, path, ctx):
        result = yield from self.proxy().op_dirstat(path, ctx=ctx)
        return result

    def op_readdir(self, path, ctx):
        result = yield from self.proxy().op_readdir(path, ctx=ctx)
        return result

    def op_mkdir(self, path, ctx):
        result = yield from self.proxy().op_mkdir(path, ctx=ctx)
        return result

    def op_rmdir(self, path, ctx):
        result = yield from self.proxy().op_rmdir(path, ctx=ctx)
        return result

    def op_dirrename(self, src, dst, ctx):
        result = yield from self.proxy().op_dirrename(src, dst, ctx=ctx)
        return result

    def op_setattr(self, path, permission, ctx):
        result = yield from self.proxy().op_setattr(path, permission, ctx=ctx)
        return result


class ProxyFrontend:
    """The proxy process's wire surface: the typed op registry over TCP.

    One method matters — ``perform`` takes an :class:`repro.ops.Op` wire
    payload, drives the operation end to end, and returns the result plus
    the per-op counters a simulated client would read off its OpContext.
    """

    def __init__(self, service: LiveMantleService):
        self.service = service

    def dispatch(self, method: str, args: tuple, kwargs: dict, span=None):
        if method == "ping":
            return {"pong": True, "now_us": self.service.sim.now}
        if method != "perform":
            from repro.errors import MetadataError
            raise MetadataError(f"proxy frontend has no RPC {method!r}")
        from repro.ops import Op
        from repro.sim.stats import OpContext

        op = Op.from_wire(args[0])
        ctx = OpContext(op.name)
        sim = self.service.sim
        tracer = sim.tracer
        if not tracer.enabled:
            result = yield from self.service.perform(op, ctx=ctx)
            return {"result": result, "rpcs": ctx.rpcs,
                    "retries": ctx.retries, "latency_us": ctx.latency}
        # Handler span mirroring the sim Server.dispatch convention; when
        # the caller shipped trace context, ``span`` is a RemoteSpanRef and
        # the op's whole tree re-parents onto the client's rpc span.
        handler = tracer.begin("rpc_perform", sim.now, category="handler",
                               parent=span, host=None)
        ok = True
        try:
            result = yield from self.service.perform(op, ctx=ctx)
        except BaseException:
            ok = False
            raise
        finally:
            tracer.end(handler, sim.now, ok=ok)
        return {"result": result, "rpcs": ctx.rpcs,
                "retries": ctx.retries, "latency_us": ctx.latency}


def build_proxy_role(config: MantleConfig, runtime: AsyncioRuntime,
                     tafdb_endpoints: List[str], index_endpoint: str,
                     wal_dir: Optional[str] = None) -> ProxyFrontend:
    from repro.runtime.aio import RpcConnection

    tafdb_services = [RemoteService(f"tafdb-{i}", RpcConnection(endpoint))
                      for i, endpoint in enumerate(tafdb_endpoints)]
    index_service = RemoteService(
        "indexnode-0", RpcConnection(index_endpoint))
    service = LiveMantleService(config, runtime, tafdb_services,
                                index_service, wal_dir=wal_dir)
    return ProxyFrontend(service)


# -- clusters ----------------------------------------------------------------

class InProcessCluster:
    """All three roles on one background event loop, talking over real
    localhost TCP.  The cheap way for tests (and ``--in-process`` smoke
    runs) to exercise the full wire protocol without spawning processes."""

    ROLE_ORDER = ("tafdb", "indexnode", "proxy")

    def __init__(self, config: Optional[MantleConfig] = None,
                 wal_dir: Optional[str] = None,
                 metrics: bool = False):
        self.config = config or MantleConfig.small()
        self.wal_dir = wal_dir
        self.metrics = metrics
        self.proxy_endpoint: Optional[str] = None
        #: role -> "127.0.0.1:<port>" once started (obs snapshot targets).
        self.endpoints: Dict[str, str] = {}
        #: role -> metrics port (only when ``metrics`` was requested).
        self.metrics_ports: Dict[str, int] = {}
        #: role -> that role's AsyncioRuntime (each role gets its own, so
        #: span buffers separate per "process" even though the roles share
        #: one event loop).
        self.runtimes: Dict[str, AsyncioRuntime] = {}
        self._loop = None
        self._thread: Optional[threading.Thread] = None
        self._servers: List[WireServer] = []
        self._metrics_servers: List = []
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "InProcessCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> str:
        import asyncio

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._start_roles())
            except BaseException as exc:  # surface to the caller
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            loop.run_forever()
            # Drain cancelled tasks after stop() halts the loop.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

        self._thread = threading.Thread(target=runner, name="mantle-live",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("live cluster failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"live cluster startup failed: {self._startup_error!r}")
        return self.proxy_endpoint

    def _make_runtime(self, role: str) -> AsyncioRuntime:
        tracer, telemetry = build_observability(self.config, role)
        runtime = AsyncioRuntime(tracer=tracer, telemetry=telemetry,
                                 process_name=role)
        self.runtimes[role] = runtime
        return runtime

    async def _start_metrics(self, role: str,
                             runtime: AsyncioRuntime) -> None:
        if not self.metrics:
            return
        from repro.runtime.obs import MetricsServer

        server = MetricsServer(runtime)
        self.metrics_ports[role] = await server.start()
        self._metrics_servers.append(server)

    async def _start_roles(self) -> None:
        runtime = self._make_runtime("tafdb")
        tafdb = build_tafdb_role(self.config, runtime, wal_dir=self.wal_dir)
        tafdb_server = WireServer(runtime, tafdb)
        tafdb_port = await tafdb_server.start()
        await self._start_metrics("tafdb", runtime)

        runtime = self._make_runtime("indexnode")
        index = build_indexnode_role(self.config, runtime,
                                     wal_dir=self.wal_dir)
        index_server = WireServer(runtime, index)
        index_port = await index_server.start()
        await self._start_metrics("indexnode", runtime)

        runtime = self._make_runtime("proxy")
        frontend = build_proxy_role(
            self.config, runtime,
            [f"127.0.0.1:{tafdb_port}"], f"127.0.0.1:{index_port}",
            wal_dir=self.wal_dir)
        proxy_server = WireServer(runtime, frontend)
        proxy_port = await proxy_server.start()
        await self._start_metrics("proxy", runtime)

        self._servers = [tafdb_server, index_server, proxy_server]
        self.endpoints = {"tafdb": f"127.0.0.1:{tafdb_port}",
                          "indexnode": f"127.0.0.1:{index_port}",
                          "proxy": f"127.0.0.1:{proxy_port}"}
        self.proxy_endpoint = self.endpoints["proxy"]

    def stop(self) -> None:
        import asyncio

        if self._loop is None:
            return

        async def shutdown():
            for server in self._metrics_servers:
                await server.stop()
            for server in self._servers:
                await server.stop()

        future = asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        try:
            future.result(timeout=10)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop = None
        self._thread = None

    # -- observability -------------------------------------------------------

    def trace_snapshots(self) -> List[dict]:
        """Per-role trace snapshots (direct runtime access; no RPC).

        Safe after the driving client has drained: the snapshot payloads
        are built from plain attribute reads on each role's runtime.
        """
        from repro.runtime.obs import trace_snapshot_payload

        return [trace_snapshot_payload(self.runtimes[role])
                for role in self.ROLE_ORDER if role in self.runtimes]

    def metrics_snapshots(self) -> List[dict]:
        """Per-role metrics snapshots (direct runtime access; no RPC)."""
        from repro.runtime.obs import metrics_snapshot_payload

        return [metrics_snapshot_payload(self.runtimes[role])
                for role in self.ROLE_ORDER if role in self.runtimes]


class ProcessCluster:
    """Real OS processes: one ``mantle-serve`` per role.

    Startup is a READY handshake — each child prints
    ``MANTLE-SERVE READY port=<port>`` once its listener is bound; shutdown
    is SIGTERM, which each role traps for a clean exit 0 (the contract the
    CI ``live-smoke`` job asserts).
    """

    ROLE_ORDER = ("tafdb", "indexnode", "proxy")

    def __init__(self, config_name: str = "small",
                 wal_dir: Optional[str] = None,
                 ready_timeout_s: float = 30.0,
                 trace: bool = False, telemetry: bool = False,
                 metrics: bool = False):
        self.config_name = config_name
        self.wal_dir = wal_dir
        self.ready_timeout_s = ready_timeout_s
        self.trace = trace
        self.telemetry = telemetry
        self.metrics = metrics
        self.processes: Dict[str, subprocess.Popen] = {}
        self.ports: Dict[str, int] = {}
        #: role -> "127.0.0.1:<port>" (obs snapshot targets).
        self.endpoints: Dict[str, str] = {}
        #: role -> metrics HTTP port (only with ``metrics=True``).
        self.metrics_ports: Dict[str, int] = {}
        self.proxy_endpoint: Optional[str] = None

    def __enter__(self) -> "ProcessCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _spawn(self, role: str, extra: List[str]) -> subprocess.Popen:
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        argv = [sys.executable, "-m", "repro.runtime.serve", role,
                "--config", self.config_name] + extra
        if self.wal_dir:
            argv += ["--wal-dir", os.path.join(self.wal_dir, role)]
        if self.trace:
            argv.append("--trace")
        if self.telemetry:
            argv.append("--telemetry")
        if self.metrics:
            argv += ["--metrics-port", "0"]
        return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)

    def _await_ready(self, role: str, proc: subprocess.Popen) -> int:
        """Parse the READY line; returns the wire port and records any
        advertised metrics port (``MANTLE-SERVE READY port=N [metrics=M]``).
        """
        deadline = time.monotonic() + self.ready_timeout_s
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            line = line.strip()
            if line.startswith("MANTLE-SERVE READY"):
                fields = dict(token.split("=", 1)
                              for token in line.split()[2:] if "=" in token)
                if "metrics" in fields:
                    self.metrics_ports[role] = int(fields["metrics"])
                return int(fields["port"])
        stderr = proc.stderr.read() if proc.stderr else ""
        self.stop()
        raise RuntimeError(
            f"{role} never reported READY (rc={proc.poll()}): {stderr[-2000:]}")

    def start(self) -> str:
        proc = self._spawn("tafdb", ["--port", "0"])
        self.processes["tafdb"] = proc
        self.ports["tafdb"] = self._await_ready("tafdb", proc)

        proc = self._spawn("indexnode", ["--port", "0"])
        self.processes["indexnode"] = proc
        self.ports["indexnode"] = self._await_ready("indexnode", proc)

        proc = self._spawn("proxy", [
            "--port", "0",
            "--tafdb", f"127.0.0.1:{self.ports['tafdb']}",
            "--indexnode", f"127.0.0.1:{self.ports['indexnode']}"])
        self.processes["proxy"] = proc
        self.ports["proxy"] = self._await_ready("proxy", proc)
        self.endpoints = {role: f"127.0.0.1:{port}"
                          for role, port in self.ports.items()}
        self.proxy_endpoint = self.endpoints["proxy"]
        return self.proxy_endpoint

    def stop(self, timeout_s: float = 15.0) -> Dict[str, int]:
        """SIGTERM every role (proxy first) and collect exit codes."""
        exit_codes: Dict[str, int] = {}
        for role in reversed(self.ROLE_ORDER):
            proc = self.processes.get(role)
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
        for role in reversed(self.ROLE_ORDER):
            proc = self.processes.pop(role, None)
            if proc is None:
                continue
            try:
                proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            exit_codes[role] = proc.returncode
            for stream in (proc.stdout, proc.stderr):
                if stream is not None:
                    stream.close()
        return exit_codes
