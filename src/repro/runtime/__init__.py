"""Runtime abstraction: the seam between Mantle's domain code and the world.

The same orchestration generators (proxy operations, TafDB client
transactions, IndexNode RPC handlers) run against two runtimes:

* :class:`~repro.runtime.base.SimRuntime` — a thin adapter over the
  discrete-event kernel.  Every method delegates 1:1 to the exact simulator
  primitive the code used before the seam existed, so simulated results are
  bit-identical to the pre-runtime code (gated by the determinism suites).
* :class:`~repro.runtime.aio.AsyncioRuntime` — real ``asyncio``: TCP RPC
  with length-prefixed frames, ``loop.time()`` clock, thread-offloaded
  fsync.  ``mantle-serve`` boots IndexNode/TafDB/proxy roles as actual OS
  processes on it, and :class:`~repro.runtime.client.LiveClient` speaks the
  typed op registry to the proxy over the wire.

See ``docs/runtime.md`` for the protocol, the wire format and the
``mantle-serve`` quickstart.
"""

from repro.runtime.base import Runtime, SimRuntime

__all__ = ["Runtime", "SimRuntime"]
