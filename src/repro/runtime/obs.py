"""Live-cluster observability: span snapshots, trace merge, metrics.

The live runtime reuses the simulator's instrument types
(:class:`~repro.sim.trace.Tracer`, :class:`~repro.sim.telemetry.Telemetry`)
fed by wallclock instead of the sim clock, but each process only sees its
own buffers.  This module is the cross-process half:

* **snapshots** — every :class:`~repro.runtime.aio.WireServer` answers
  ``obs.trace_snapshot`` / ``obs.metrics_snapshot`` / ``obs.reset``
  control RPCs with the JSON payloads built here, so any role can be
  interrogated over its ordinary wire port;
* **merge** — :func:`merge_chrome_trace` aligns per-process span buffers
  onto one time axis (each process records the wall-clock epoch of its
  monotonic t0) and emits a single Chrome-trace payload, one pid track
  per process, with the cross-process parent links preserved in span
  attributes (``remote_parent_proc``/``remote_parent_span``);
* **validation** — :func:`cross_process_problems` checks every remote
  parent reference resolves and every op tree is connected across the
  processes it touched; :func:`dyn_self_time_problems` checks the
  within-process dynamic trees telescope (non-negative self-times), the
  invariant the profiler and critical-path machinery rely on;
* **phase breakdown** — :func:`phase_breakdown` walks the *global* span
  tree (within-process dynamic links + cross-process remote links) and
  folds each op kind's charges into wire/fsync/cpu/queue microseconds
  per op.  The same function consumes simulated tracer output, which is
  what makes the ``mantle-exp live fig12`` differential an
  apples-to-apples table;
* **metrics endpoint** — :class:`MetricsServer` is the tiny HTTP listener
  behind ``mantle-serve --metrics-port``: every GET answers one JSON
  metrics snapshot (schema-checked by :func:`validate_metrics_snapshot`).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim import telemetry as telemetry_module
from repro.sim.trace import (
    CAT_OP,
    Span,
    chrome_trace_events,
    span_from_jsonable,
    span_to_jsonable,
    trace_stats,
)

#: Snapshot schema version; bump on incompatible payload changes.
SNAPSHOT_VERSION = 1

#: Phase columns of the sim-vs-live differential, in display order.
#: ``queue:*`` refinements fold into ``queue``; anything else (there is
#: nothing else today) would fold into ``other``.
PHASE_KINDS = ("wire", "fsync", "cpu", "queue")


# ---------------------------------------------------------------------------
# Snapshot payloads (what the obs.* control RPCs answer with).
# ---------------------------------------------------------------------------

def snapshot_from_tracer(process: str, tracer, epoch_us: float = 0.0,
                         now_us: float = 0.0,
                         clock: str = "sim") -> Dict[str, Any]:
    """Build a trace snapshot from any tracer (simulated or wall-clock)."""
    spans = tracer.retained_spans() if hasattr(tracer, "retained_spans") \
        else list(tracer.spans)
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "process": process,
        "clock": clock,
        "epoch_us": epoch_us,
        "now_us": now_us,
        "enabled": bool(tracer.enabled),
        "started": getattr(tracer, "started", 0),
        "finished": getattr(tracer, "finished", 0),
        "dropped": tracer.dropped,
        "spans": [span_to_jsonable(span) for span in spans],
    }
    snapshot["trace_stats"] = trace_stats(tracer)
    return snapshot


def trace_snapshot_payload(runtime) -> Dict[str, Any]:
    """One live process's span buffer, with its wall-clock epoch."""
    return snapshot_from_tracer(runtime.process_name, runtime.tracer,
                                epoch_us=runtime.epoch_us,
                                now_us=runtime.now, clock="wallclock")


def metrics_snapshot_payload(runtime) -> Dict[str, Any]:
    """One live process's metrics: tracer counters + telemetry windows."""
    tracer = runtime.tracer
    telemetry = runtime.telemetry
    return {
        "version": SNAPSHOT_VERSION,
        "process": runtime.process_name,
        "clock": "wallclock",
        "epoch_us": runtime.epoch_us,
        "now_us": runtime.now,
        "tracing": dict(trace_stats(tracer),
                        enabled=bool(tracer.enabled)),
        "telemetry": telemetry.export_payload(
            now=runtime.now, extra={"enabled": bool(telemetry.enabled)}),
    }


def validate_trace_snapshot(payload: Any) -> List[str]:
    """Schema-check one trace snapshot; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["snapshot is not an object"]
    for field, types in (("process", str), ("epoch_us", (int, float)),
                         ("now_us", (int, float)), ("spans", list)):
        if not isinstance(payload.get(field), types):
            problems.append(f"missing/mistyped field {field!r}")
    if payload.get("version") != SNAPSHOT_VERSION:
        problems.append(f"unknown snapshot version {payload.get('version')!r}")
    for i, span in enumerate(payload.get("spans") or ()):
        if not isinstance(span, dict) or "id" not in span \
                or "start_us" not in span or "name" not in span:
            problems.append(f"spans[{i}]: not a span record")
    return problems


def validate_metrics_snapshot(payload: Any) -> List[str]:
    """Schema-check one metrics snapshot; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["snapshot is not an object"]
    for field, types in (("process", str), ("epoch_us", (int, float)),
                         ("now_us", (int, float)), ("tracing", dict),
                         ("telemetry", dict)):
        if not isinstance(payload.get(field), types):
            problems.append(f"missing/mistyped field {field!r}")
    if payload.get("version") != SNAPSHOT_VERSION:
        problems.append(f"unknown snapshot version {payload.get('version')!r}")
    telemetry = payload.get("telemetry")
    if isinstance(telemetry, dict):
        rows = telemetry.get("rows")
        if not isinstance(rows, list):
            problems.append("telemetry.rows missing")
        else:
            problems.extend(telemetry_module.validate_rows(rows))
        digests = telemetry.get("digests")
        if digests is not None:
            problems.extend(validate_digests(digests))
    return problems


def validate_digests(digests: Any) -> List[str]:
    """Schema-check a telemetry payload's ``digests`` section."""
    problems: List[str] = []
    if not isinstance(digests, list):
        return ["telemetry.digests is not a list"]
    for i, digest in enumerate(digests):
        where = f"digests[{i}]"
        if not isinstance(digest, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(digest.get("metric"), str):
            problems.append(f"{where}: missing metric name")
        if not isinstance(digest.get("window_us"), (int, float)):
            problems.append(f"{where}: missing window_us")
        for j, window in enumerate(digest.get("windows") or ()):
            if not isinstance(window, dict) \
                    or "window_start_us" not in window \
                    or not isinstance(window.get("buckets"), list):
                problems.append(f"{where}.windows[{j}]: not a digest window")
    return problems


def merged_digests(metrics_snapshots: Iterable[Dict[str, Any]]
                   ) -> Dict[Tuple[str, str], Any]:
    """Merge every process's digests into cluster-wide ones.

    Bucket-count addition is associative and commutative, so the merge is
    order-independent; snapshots are still folded in sorted process order
    to keep the per-window float sums (count-weighted means) byte-stable.
    Returns ``(metric, host) -> merged Digest``.
    """
    snaps = sorted(metrics_snapshots, key=lambda s: s.get("process", ""))
    out: Dict[Tuple[str, str], Any] = {}
    for snap in snaps:
        telemetry = snap.get("telemetry") or {}
        for data in telemetry.get("digests") or ():
            digest = telemetry_module.digest_from_jsonable(data)
            key = (digest.name, digest.host or "")
            if key in out:
                out[key].merge(digest)
            else:
                out[key] = digest
    return out


# ---------------------------------------------------------------------------
# Cross-process merge and validation.
# ---------------------------------------------------------------------------

def _spans_of(snapshot: Dict[str, Any]) -> List[Span]:
    return [span_from_jsonable(d) for d in snapshot.get("spans", ())]


def merge_chrome_trace(snapshots: Iterable[Dict[str, Any]]) -> dict:
    """Merge per-process snapshots into one Chrome-trace payload.

    Each process becomes a pid track; timestamps are shifted so every
    track shares the earliest process's epoch as t=0 (keeping ``ts``
    non-negative, which the validator requires).  Cross-process edges
    survive as ``remote_parent_proc``/``remote_parent_span`` span args.
    """
    snaps = sorted(snapshots, key=lambda s: s.get("process", ""))
    if not snaps:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(float(s.get("epoch_us", 0.0)) for s in snaps)
    events: List[dict] = []
    for pid, snap in enumerate(snaps, start=1):
        offset = float(snap.get("epoch_us", 0.0)) - base
        events.extend(chrome_trace_events(
            _spans_of(snap), pid=pid, process_name=snap.get("process"),
            ts_offset_us=offset))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _global_index(snapshots: Iterable[Dict[str, Any]]):
    """Index spans by (process, id); compute each span's global parent key.

    Parent preference: an explicit cross-process link first, then the
    within-process dynamic parent, then a ``join_to`` edge (a 2PC fan-out
    leg joining back into the span that awaited it — legs run as their own
    tasks, so they have no dynamic parent), then the declared parent.
    Returns ``(spans, parent_of)`` where keys are ``(process, span_id)``.
    """
    spans: Dict[Tuple[str, int], Span] = {}
    for snap in snapshots:
        proc = snap.get("process", "")
        for span in _spans_of(snap):
            spans[(proc, span.span_id)] = span
    parent_of: Dict[Tuple[str, int], Optional[Tuple[str, int]]] = {}
    for (proc, span_id), span in spans.items():
        parent = None
        attrs = span.attrs or {}
        if "remote_parent_proc" in attrs:
            parent = (str(attrs["remote_parent_proc"]),
                      int(attrs.get("remote_parent_span", 0)))
        elif span.dyn_parent_id:
            parent = (proc, span.dyn_parent_id)
        elif attrs.get("join_to"):
            parent = (proc, int(attrs["join_to"]))
        elif span.parent_id:
            parent = (proc, span.parent_id)
        if parent is not None and parent not in spans:
            # Parent fell out of the ring (or lives in a process we did
            # not snapshot): treat as a root, the validators report it.
            parent = None
        parent_of[(proc, span_id)] = parent
    return spans, parent_of


def cross_process_problems(snapshots: List[Dict[str, Any]]) -> List[str]:
    """Check the merged trace's cross-process structure; returns problems.

    * every ``remote_parent_*`` reference must resolve to a snapshotted
      span in the named process;
    * every ``op`` root must head a *connected* tree — no descendant may
      sit in a cycle or dangle off a missing parent (both would mean the
      re-parenting protocol lost an edge).
    """
    problems: List[str] = []
    spans: Dict[Tuple[str, int], Span] = {}
    procs = set()
    for snap in snapshots:
        proc = snap.get("process", "")
        procs.add(proc)
        for span in _spans_of(snap):
            spans[(proc, span.span_id)] = span
    for (proc, span_id), span in sorted(spans.items()):
        attrs = span.attrs or {}
        if "remote_parent_proc" not in attrs:
            continue
        target = (str(attrs["remote_parent_proc"]),
                  int(attrs.get("remote_parent_span", 0)))
        if target[0] not in procs:
            problems.append(
                f"{proc}#{span_id} ({span.name}): remote parent process "
                f"{target[0]!r} was not snapshotted")
        elif target not in spans:
            problems.append(
                f"{proc}#{span_id} ({span.name}): remote parent "
                f"{target[0]}#{target[1]} not found (dropped span?)")
    return problems


def op_tree_stats(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Connectivity stats for the merged trace: per-op-root tree sizes and
    the set of processes each tree touches (the e2e assertion surface)."""
    spans, parent_of = _global_index(snapshots)
    children: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for key, parent in parent_of.items():
        if parent is not None:
            children.setdefault(parent, []).append(key)
    trees = []
    for key, span in sorted(spans.items()):
        if span.category != CAT_OP or parent_of[key] is not None:
            continue
        seen = set()
        stack = [key]
        touched = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            touched.add(node[0])
            stack.extend(children.get(node, ()))
        trees.append({"root": f"{key[0]}#{key[1]}", "op": span.name,
                      "spans": len(seen), "processes": sorted(touched)})
    return {"ops": len(trees), "trees": trees}


def dyn_self_time_problems(snapshots: List[Dict[str, Any]],
                           tolerance_us: float = 1.0) -> List[str]:
    """Within each process, dynamic-tree self-times must be non-negative.

    Spans opened on one task stack nest strictly (a child's interval lies
    inside its dynamic parent's), so duration minus the sum of direct
    dynamic children must never go meaningfully negative — the telescoping
    property every downstream analysis assumes.  ``tolerance_us`` absorbs
    clock-read ordering dust on the wall clock.
    """
    problems: List[str] = []
    for snap in snapshots:
        proc = snap.get("process", "")
        spans = {s.span_id: s for s in _spans_of(snap)
                 if s.end_us is not None}
        child_us: Dict[int, float] = {}
        for span in spans.values():
            pid = span.dyn_parent_id
            if pid and pid in spans:
                child_us[pid] = child_us.get(pid, 0.0) + span.duration_us
        for span_id, span in sorted(spans.items()):
            self_us = span.duration_us - child_us.get(span_id, 0.0)
            if self_us < -tolerance_us:
                problems.append(
                    f"{proc}#{span_id} ({span.name}): negative self time "
                    f"{self_us:.1f}us")
    return problems


# ---------------------------------------------------------------------------
# Per-op phase breakdown (the sim-vs-live differential's data source).
# ---------------------------------------------------------------------------

class OpPhases:
    """Aggregated phase costs for one op kind across its whole tree."""

    __slots__ = ("op", "count", "total_latency_us", "phase_us")

    def __init__(self, op: str):
        self.op = op
        self.count = 0
        self.total_latency_us = 0.0
        self.phase_us: Dict[str, float] = {}

    @property
    def mean_latency_us(self) -> float:
        return self.total_latency_us / self.count if self.count else 0.0

    def mean_phase_us(self, kind: str) -> float:
        return self.phase_us.get(kind, 0.0) / self.count if self.count \
            else 0.0

    @property
    def mean_other_us(self) -> float:
        """Latency no charge explains: blocked/idle residual per op."""
        accounted = sum(self.phase_us.values())
        return max(0.0, (self.total_latency_us - accounted) / self.count) \
            if self.count else 0.0


def _fold_kind(kind: str) -> str:
    if kind.startswith("queue"):
        return "queue"
    return kind if kind in PHASE_KINDS else "other"


def phase_breakdown(snapshots: List[Dict[str, Any]]) -> Dict[str, OpPhases]:
    """Fold every op root's *global* tree into per-kind phase costs.

    Charges land on exactly one span each (the innermost open one at
    charge time) and the server-side handler time is subtracted from the
    caller's wire charge, so summing a tree's charges — across processes,
    via the remote links — double-counts nothing.  Works identically on
    simulated and live snapshots; only successful ops are folded.
    """
    spans, parent_of = _global_index(snapshots)
    children: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for key, parent in parent_of.items():
        if parent is not None:
            children.setdefault(parent, []).append(key)
    out: Dict[str, OpPhases] = {}
    for key, span in sorted(spans.items()):
        if span.category != CAT_OP or parent_of[key] is not None:
            continue
        if not span.ok or span.end_us is None:
            continue
        agg = out.get(span.name)
        if agg is None:
            agg = out[span.name] = OpPhases(span.name)
        agg.count += 1
        agg.total_latency_us += span.duration_us
        seen = set()
        stack = [key]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            node_span = spans[node]
            if node_span.costs:
                for (kind, _host), us in node_span.costs.items():
                    folded = _fold_kind(kind)
                    agg.phase_us[folded] = agg.phase_us.get(folded, 0.0) + us
            stack.extend(children.get(node, ()))
    return out


# ---------------------------------------------------------------------------
# Snapshot collection over the wire.
# ---------------------------------------------------------------------------

async def call_endpoint(endpoint: str, method: str,
                        timeout_s: float = 10.0) -> Any:
    """One throwaway-connection RPC (used for obs.* control methods)."""
    from repro.runtime import wire

    host, port = endpoint.rsplit(":", 1)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, int(port)), timeout_s)
    try:
        writer.write(wire.encode_request(1, method, (), {}))
        await writer.drain()
        payload = await asyncio.wait_for(wire.read_frame(reader), timeout_s)
    finally:
        writer.close()
    return wire.decode_result(payload)


def collect_snapshots(endpoints: Dict[str, str],
                      method: str = "obs.trace_snapshot"
                      ) -> List[Dict[str, Any]]:
    """Fetch one obs snapshot from each role endpoint (blocking helper).

    ``endpoints`` maps role name -> ``host:port``.  Runs its own event
    loop, so call it from synchronous driver code only (the ``mantle-exp``
    commands), never from inside a live cluster's loop.
    """
    async def _collect():
        out = []
        for _role, endpoint in sorted(endpoints.items()):
            out.append(await call_endpoint(endpoint, method))
        return out

    return asyncio.run(_collect())


# ---------------------------------------------------------------------------
# The --metrics-port HTTP endpoint.
# ---------------------------------------------------------------------------

class MetricsServer:
    """Minimal HTTP/1.0 listener serving one JSON metrics snapshot per GET.

    Deliberately not a web framework: it answers every request (any path,
    any method) with the current :func:`metrics_snapshot_payload`, which
    is all a scrape loop or a curl in CI needs.
    """

    def __init__(self, runtime, host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            # Drain the request head (request line + headers) best-effort;
            # the response does not depend on it.
            try:
                await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError):
                pass
            body = json.dumps(metrics_snapshot_payload(self.runtime),
                              separators=(",", ":")).encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
