"""The asyncio implementation of the :class:`~repro.runtime.base.Runtime`.

Domain code is written as plain generators that ``yield from`` runtime
methods.  Under :class:`AsyncioRuntime` those methods yield small *effect*
objects; :meth:`AsyncioRuntime.drive` is the trampoline that steps the
generator with ``send``/``throw``, awaiting each effect on the real event
loop:

* ``_Sleep``  -> ``asyncio.sleep``
* ``_Rpc``    -> one multiplexed request/response round trip over TCP
* ``_Gather`` -> ``asyncio.gather`` over sub-generators (the 2PC fan-out)
* ``_Fsync``  -> a real ``os.fsync`` offloaded to a worker thread
* ``_Propose``-> the live single-node Raft's durable append+apply

``work()`` is deliberately a no-op: in the simulator it charges modelled
CPU, live the real computation already happened on this very event loop.
That asymmetry is the point of the sim-vs-live comparison
(``mantle-exp live fig12``), not a bug.

This module also carries both halves of the TCP transport: the client-side
:class:`RpcConnection`/:class:`RemoteService` (per-request ids, response
futures, per-call deadline) and the server-side :class:`WireServer` that
exposes any object with sim-``Server``-compatible ``dispatch`` over the
wire.  Transport faults map onto the :class:`~repro.errors.TransportError`
branch, so domain retry loops treat a dropped connection exactly like a
crashed simulated host.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Iterable, Optional

from repro.errors import (
    ConnectionLostError,
    FrameError,
    MetadataError,
    RPCTimeoutError,
)
from repro.runtime import wire
from repro.runtime.base import Runtime
from repro.sim.telemetry import NULL_TELEMETRY
from repro.sim.trace import NULL_SPAN, NULL_TRACER, RemoteSpanRef

#: Default per-RPC response deadline.  Generous: live ops are millisecond
#: scale, and a smoke run on a loaded CI box must not flake.
DEFAULT_RPC_TIMEOUT_S = 30.0


class _Sleep:
    __slots__ = ("us",)

    def __init__(self, us: float):
        self.us = us


class _Rpc:
    __slots__ = ("service", "method", "args", "kwargs", "trace", "want_meta")

    def __init__(self, service, method, args, kwargs, trace=None,
                 want_meta=False):
        self.service = service
        self.method = method
        self.args = args
        self.kwargs = kwargs
        #: Cross-process span context to stamp on the request frame.
        self.trace = trace
        #: When set the trampoline resolves to ``(result, srv_us)`` so the
        #: instrumented ``rpc()`` can split round-trip time into wire vs
        #: remote handler time.
        self.want_meta = want_meta


class _Gather:
    __slots__ = ("generators",)

    def __init__(self, generators):
        self.generators = generators


class _Fsync:
    __slots__ = ("host",)

    def __init__(self, host):
        self.host = host


class _Propose:
    __slots__ = ("node", "command")

    def __init__(self, node, command):
        self.node = node
        self.command = command


class AsyncioRuntime(Runtime):
    """Real execution environment: asyncio TCP, wallclock, worker-thread
    fsync.  ``now`` is microseconds since runtime construction, so live
    latencies read on the same scale as simulated ones.

    ``tracer``/``telemetry`` are the same instrument types the simulator
    carries (wall-clock fed instead of sim-clock fed); they default to the
    null singletons so an uninstrumented runtime pays one attribute load
    per site — the zero-cost-off contract the live smoke baseline pins.
    ``epoch_us`` records the wall-clock epoch (``time.time()``) of the
    runtime's t0, which is what lets the trace merge put spans from
    processes with different monotonic origins on one time axis.
    """

    kind = "aio"

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                 rpc_timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
                 tracer=None, telemetry=None, process_name: str = "live"):
        self._loop = loop
        self.rpc_timeout_s = rpc_timeout_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self.process_name = process_name
        self._t0 = time.monotonic()
        self.epoch_us = time.time() * 1e6

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    # -- Runtime surface (generators yielding effects) ----------------------

    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1e6

    def sleep(self, us: float):
        yield _Sleep(us)

    def work(self, host, us: float):
        # Real CPU time is real; nothing to charge.
        return
        yield  # pragma: no cover

    def fsync(self, host, us: float):
        yield _Fsync(host)

    def rpc(self, service, method: str, *args, ctx=None, **kwargs):
        if ctx is not None:
            ctx.rpcs += 1
        tracer = self.tracer
        telemetry = self.telemetry
        if not tracer.enabled and not telemetry.enabled:
            result = yield _Rpc(service, method, args, kwargs)
            return result
        # Instrumented path: open an rpc span parented like the simulated
        # Network.rpc (the op context's root, falling back to the innermost
        # open span), ship span context on the frame, and charge the wire
        # cost as round-trip minus remote handler time.
        name = getattr(service, "name", None) or str(service)
        span = NULL_SPAN
        trace_ctx = None
        if tracer.enabled:
            parent = ctx.trace if ctx is not None else tracer.current_span()
            span = tracer.begin("rpc:" + method, self.now, category="rpc",
                                parent=parent, host=name)
            if span:
                trace_ctx = {"proc": self.process_name,
                             "span": span.span_id}
        started = self.now
        if telemetry.enabled:
            telemetry.counter("rpc.count", name).add(started)
            telemetry.gauge("rpc.in_flight").adjust(started, 1.0)
        ok = True
        srv_us = 0.0
        try:
            result, srv_us = yield _Rpc(service, method, args, kwargs,
                                        trace=trace_ctx, want_meta=True)
        except BaseException:
            ok = False
            raise
        finally:
            now = self.now
            if telemetry.enabled:
                telemetry.gauge("rpc.in_flight").adjust(now, -1.0)
                telemetry.histogram("rpc.latency_us", name).record(
                    now, now - started)
            if tracer.enabled:
                if ok:
                    tracer.charge("wire", max(0.0, (now - started) - srv_us),
                                  name)
                tracer.end(span, now, ok=ok)
        return result

    def gather(self, generators: Iterable):
        results = yield _Gather(list(generators))
        return results

    def propose(self, node, command):
        result = yield _Propose(node, command)
        return result

    # -- the trampoline -----------------------------------------------------

    async def drive(self, generator) -> Any:
        """Run one domain generator to completion, awaiting its effects."""
        value: Any = None
        pending_exc: Optional[BaseException] = None
        while True:
            try:
                if pending_exc is not None:
                    exc, pending_exc = pending_exc, None
                    effect = generator.throw(exc)
                else:
                    effect = generator.send(value)
            except StopIteration as stop:
                return stop.value
            try:
                value = await self._perform(effect)
            except BaseException as exc:  # delivered into the generator
                pending_exc = exc
                value = None

    async def _perform(self, effect) -> Any:
        if isinstance(effect, _Rpc):
            if effect.want_meta:
                result, payload = await effect.service.call(
                    effect.method, effect.args, effect.kwargs,
                    timeout_s=self.rpc_timeout_s, trace=effect.trace,
                    with_meta=True)
                return result, payload.get("srv_us", 0.0)
            return await effect.service.call(
                effect.method, effect.args, effect.kwargs,
                timeout_s=self.rpc_timeout_s)
        if isinstance(effect, _Sleep):
            await asyncio.sleep(effect.us / 1e6)
            return None
        if isinstance(effect, _Gather):
            return list(await asyncio.gather(
                *(self.drive(g) for g in effect.generators)))
        if isinstance(effect, _Fsync):
            tracer = self.tracer
            telemetry = self.telemetry
            if not tracer.enabled and not telemetry.enabled:
                await self.loop.run_in_executor(None, effect.host.do_fsync)
                return None
            # The live analogue of the simulator's modelled fsync charge:
            # measure the executor round trip (queueing to a worker thread
            # included, exactly as the sim's disk FIFO queueing is).
            started = self.now
            await self.loop.run_in_executor(None, effect.host.do_fsync)
            now = self.now
            host = getattr(effect.host, "name", None)
            if tracer.enabled:
                tracer.charge("fsync", now - started, host)
            if telemetry.enabled:
                telemetry.counter("host.fsync", host).add(now)
                telemetry.counter("host.disk_busy_us", host,
                                  capacity=1.0).add_interval(
                    started, now, now - started)
            return None
        if isinstance(effect, _Propose):
            return await effect.node.commit(effect.command)
        raise RuntimeError(
            f"generator yielded a non-effect to AsyncioRuntime: {effect!r} "
            "(a simulator event leaked through the runtime seam)")


# -- client-side transport ---------------------------------------------------

class RpcConnection:
    """One multiplexed TCP connection: concurrent in-flight requests carry
    distinct ids; a background task routes response frames to futures."""

    def __init__(self, endpoint: str):
        self.endpoint = endpoint
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._connect_lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        async with self._connect_lock:
            if self._writer is not None and not self._writer.is_closing():
                return
            host, port = self.endpoint.rsplit(":", 1)
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    host, int(port))
            except OSError as exc:
                raise ConnectionLostError(self.endpoint, str(exc)) from exc
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        error: MetadataError
        try:
            while True:
                payload = await wire.read_frame(self._reader)
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            error = ConnectionLostError(self.endpoint, str(exc))
        except FrameError as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionLostError(self.endpoint, "connection closed")
        self._fail_all(error)

    def _fail_all(self, error: MetadataError) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    async def call(self, method: str, args: tuple, kwargs: dict,
                   timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
                   trace: Optional[dict] = None,
                   with_meta: bool = False) -> Any:
        """One request/response round trip.

        ``trace`` rides the request envelope as cross-process span context;
        ``with_meta`` returns ``(result, payload)`` so callers can read
        envelope metadata (``srv_us``) alongside the decoded result.
        """
        await self._ensure_connected()
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(
                wire.encode_request(request_id, method, args, kwargs,
                                    trace=trace))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ConnectionLostError(self.endpoint, str(exc)) from exc
        try:
            payload = await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise RPCTimeoutError(self.endpoint, timeout_s) from None
        result = wire.decode_result(payload)
        if with_meta:
            return result, payload
        return result

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._fail_all(ConnectionLostError(self.endpoint, "closed"))


class RemoteService:
    """Client-side stub for one live service: a name plus a connection.

    This is what ``AsyncioRuntime.rpc`` dispatches to — the live
    counterpart of passing a simulated ``Server`` to ``Network.rpc``.
    """

    def __init__(self, name: str, connection: RpcConnection):
        self.name = name
        self.connection = connection

    @property
    def endpoint(self) -> str:
        return self.connection.endpoint

    async def call(self, method: str, args: tuple, kwargs: dict,
                   timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
                   trace: Optional[dict] = None,
                   with_meta: bool = False) -> Any:
        return await self.connection.call(method, args, kwargs,
                                          timeout_s=timeout_s, trace=trace,
                                          with_meta=with_meta)


# -- server-side transport ---------------------------------------------------

class WireServer:
    """Serves a dispatchable object (live DBServer/IndexNodeService role, or
    the proxy facade) over length-prefixed frames.

    Each request runs as its own task, so one slow 2PC prepare doesn't
    head-of-line-block an independent read on the same connection — the
    concurrency a real service has and the simulator models with processes.
    """

    def __init__(self, runtime: AsyncioRuntime, dispatcher,
                 host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        self.dispatcher = dispatcher
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        tasks = set()
        try:
            while True:
                try:
                    payload = await wire.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError,
                        FrameError, OSError):
                    break
                except asyncio.CancelledError:
                    break  # server stopping; finish cleanly, not as an error
                task = asyncio.ensure_future(
                    self._handle_request(payload, writer))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()

    async def _handle_request(self, payload: dict,
                              writer: asyncio.StreamWriter) -> None:
        request_id = payload.get("id")
        try:
            method = payload["method"]
            if method.startswith("obs."):
                result = self._handle_obs(method)
                frame = wire.encode_response(request_id, result=result)
            else:
                args = tuple(wire.from_jsonable(a)
                             for a in payload.get("args", []))
                kwargs = {k: wire.from_jsonable(v)
                          for k, v in payload.get("kwargs", {}).items()}
                span = None
                srv_started = None
                if self.runtime.tracer.enabled:
                    # Re-parent this handler onto the caller's span so the
                    # merged trace shows one tree per op across processes.
                    trace_ctx = payload.get("trace")
                    if isinstance(trace_ctx, dict):
                        span = RemoteSpanRef(str(trace_ctx.get("proc", "")),
                                             int(trace_ctx.get("span", 0)))
                    srv_started = self.runtime.now
                result = await self.runtime.drive(
                    self.dispatcher.dispatch(method, args, kwargs, span))
                srv_us = (None if srv_started is None
                          else self.runtime.now - srv_started)
                frame = wire.encode_response(request_id, result=result,
                                             srv_us=srv_us)
        except MetadataError as exc:
            frame = wire.encode_response(request_id, error=exc)
        except Exception as exc:  # noqa: BLE001 - report, don't kill the conn
            frame = wire.encode_response(request_id, error=exc)
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it

    def _handle_obs(self, method: str):
        """Observability control RPCs, answered by the transport itself so
        every live role exposes them without dispatcher involvement."""
        from repro.runtime import obs

        if method == "obs.trace_snapshot":
            return obs.trace_snapshot_payload(self.runtime)
        if method == "obs.metrics_snapshot":
            return obs.metrics_snapshot_payload(self.runtime)
        if method == "obs.reset":
            self.runtime.tracer.reset()
            return {"ok": True}
        raise MetadataError(f"unknown observability RPC {method!r}")
