"""The Runtime protocol and its simulator-backed implementation.

Before this seam existed, domain code reached into the simulator directly
in exactly three kinds of places:

* **RPC dispatch** — ``self.network.rpc(server, method, ...)``;
* **time** — ``self.sim.now`` reads and ``yield self.sim.timeout(us)``;
* **host execution** — ``yield from self.host.work(us)`` /
  ``host.fsync_cost(us)`` (plus the Raft ``propose`` commit wait and the
  2PC fan-out via ``sim.process``/``sim.all_of``).

:class:`Runtime` names those touch points.  Orchestration code is written
as plain generators that only ever ``yield from`` runtime methods; what the
generator actually *yields* is an implementation detail of the runtime
driving it:

* under :class:`SimRuntime` the methods delegate to the original simulator
  primitives, so the kernel sees the exact event sequence it always saw —
  simulated results are bit-identical to the pre-seam code (the fastpath /
  lane determinism suites gate this);
* under :class:`~repro.runtime.aio.AsyncioRuntime` the methods yield small
  effect objects that an ``async`` trampoline translates into real TCP
  round trips, ``asyncio.sleep`` and thread-offloaded ``fsync``.

Nothing in this module imports asyncio; the simulator path stays exactly as
cheap as it was.

Observability rides the same seam.  Both runtimes expose ``tracer`` and
``telemetry`` attributes (``NULL_TRACER``/``NULL_TELEMETRY`` when off):
under :class:`SimRuntime` they are the simulator's own instruments charging
simulated microseconds; :class:`~repro.runtime.aio.AsyncioRuntime` carries
its own wall-clock pair and stamps real fsync and wire time into the same
span/charge vocabulary, so one critical-path / phase-breakdown toolchain
reads both worlds.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class Runtime:
    """Abstract execution environment for Mantle's orchestration code.

    All generator methods are consumed with ``yield from`` inside domain
    generators; ``now`` is an ordinary property.  ``kind`` distinguishes
    implementations where behaviour must legitimately differ (e.g. error
    messages); domain code must not branch on it for anything that changes
    results.
    """

    kind = "abstract"

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current time in microseconds (simulated or monotonic wallclock)."""
        raise NotImplementedError

    def sleep(self, us: float):
        """Suspend the calling operation for ``us`` microseconds."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- host execution ----------------------------------------------------

    def work(self, host, us: float):
        """Charge ``us`` of CPU on ``host``.

        In the simulator this occupies one core (queueing included); on a
        live runtime the real computation already happened, so this is a
        no-op.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def fsync(self, host, us: float):
        """One durable flush on ``host``'s disk.

        The simulator charges ``us`` on the (single-queue) disk resource; a
        live runtime performs a real ``os.fsync`` offloaded to a worker
        thread so the event loop never blocks on the device.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    # -- RPC dispatch ------------------------------------------------------

    def rpc(self, service, method: str, *args, ctx=None, **kwargs):
        """One request/response round trip to ``service``.

        ``service`` is a simulated :class:`~repro.sim.network.Server` under
        :class:`SimRuntime` and a :class:`~repro.runtime.live.RemoteService`
        stub (name + address) under the asyncio runtime.  Counts one RPC on
        ``ctx`` either way, so Table 1 RTT accounting holds live.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def gather(self, generators: Iterable):
        """Run operation sub-generators concurrently; return their results
        in order (the 2PC parallel prepare/commit fan-out)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- replication -------------------------------------------------------

    def propose(self, node, command) -> Any:
        """Propose ``command`` on Raft node ``node`` and await the applied
        result.  When tracing is on, each runtime decomposes the commit in
        its own place: the simulator via the commit-stat replay in
        ``IndexNodeService._propose_attributed``, the live runtime via the
        spans ``SoloRaft.commit`` opens around its real flush and apply."""
        raise NotImplementedError
        yield  # pragma: no cover


class SimRuntime(Runtime):
    """Thin adapter over the discrete-event kernel.

    Every method delegates to the exact primitive the pre-seam code used,
    producing the identical yield sequence — this class must never add,
    remove or reorder simulator events.  ``network`` may be ``None`` for
    server-side runtimes (handlers charge work/fsync but never originate
    RPCs); calling :meth:`rpc` on such a runtime is a bug and raises.
    """

    kind = "sim"

    __slots__ = ("sim", "network")

    def __init__(self, sim, network=None):
        self.sim = sim
        self.network = network

    @property
    def now(self) -> float:
        return self.sim.now

    def sleep(self, us: float):
        yield self.sim.timeout(us)

    def work(self, host, us: float):
        yield from host.work(us)

    def fsync(self, host, us: float):
        yield from host.fsync_cost(us)

    def rpc(self, service, method: str, *args, ctx=None, **kwargs):
        network = self.network
        if network is None:
            raise RuntimeError(
                "this SimRuntime has no network transport attached")
        result = yield from network.rpc(service, method, *args,
                                        ctx=ctx, **kwargs)
        return result

    def gather(self, generators: Iterable):
        sim = self.sim
        results = yield sim.all_of(
            [sim.process(generator) for generator in generators])
        return results

    def propose(self, node, command):
        result = yield node.propose(command)
        return result


def default_runtime(sim, network=None) -> Runtime:
    """The runtime for a simulator-or-facade ``sim`` object.

    A :class:`~repro.sim.core.Simulator` answers with its cached
    :class:`SimRuntime`; the live facade objects carry their process's
    :class:`~repro.runtime.aio.AsyncioRuntime` in the same attribute —
    which is how one ``Server`` subclass serves both worlds unmodified.
    """
    runtime: Optional[Runtime] = getattr(sim, "runtime", None)
    if runtime is None:
        runtime = SimRuntime(sim, network)
    elif network is not None and getattr(runtime, "network", None) is None \
            and isinstance(runtime, SimRuntime):
        runtime = SimRuntime(sim, network)
    return runtime
