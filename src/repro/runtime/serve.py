"""``mantle-serve``: run one Mantle role as a real OS process.

Each invocation hosts one service over the live wire protocol::

    mantle-serve tafdb     --port 7401
    mantle-serve indexnode --port 7402
    mantle-serve proxy     --port 7400 \\
        --tafdb 127.0.0.1:7401 --indexnode 127.0.0.1:7402

Once the listener is bound the process prints ``MANTLE-SERVE READY
port=<port>`` on stdout (the handshake :class:`~repro.runtime.live
.ProcessCluster` waits for; with ``--metrics-port`` the line also carries
``metrics=<port>``) and serves until SIGTERM/SIGINT, which it traps for a
clean exit 0.  ``--trace``/``--telemetry`` turn on the wall-clock
instrumentation; every role then answers ``obs.trace_snapshot`` /
``obs.metrics_snapshot`` control RPCs on its wire port.

``mantle-serve cluster`` is the quickstart: it spawns all three roles as
child processes, prints the proxy endpoint, and tears the cluster down on
Ctrl-C.  See ``docs/runtime.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

from repro.core.config import MantleConfig
from repro.runtime.aio import AsyncioRuntime, WireServer

#: How often the live IndexNode drains its RemovalList (the §5.1.2
#: invalidator the simulator runs as a background process).
PURGE_PERIOD_S = 0.05


def _load_config(name: str) -> MantleConfig:
    factories = {"small": MantleConfig.small, "base": MantleConfig.base,
                 "paper": MantleConfig.paper_scale, "default": MantleConfig}
    factory = factories.get(name)
    if factory is None:
        raise SystemExit(f"unknown --config {name!r} "
                         f"(choose from {sorted(factories)})")
    config = factory()
    config.validate()
    return config


async def _purge_loop(service) -> None:
    """Live counterpart of ``IndexNodeService._purge_loop``."""
    while True:
        await asyncio.sleep(PURGE_PERIOD_S)
        service.state.invalidator.purge_pending()


async def _serve_role(args) -> int:
    from repro.runtime import live

    config = _load_config(args.config)
    tracer, telemetry = live.build_observability(
        config, args.role, force_trace=args.trace,
        force_telemetry=args.telemetry)
    runtime = AsyncioRuntime(tracer=tracer, telemetry=telemetry,
                             process_name=args.role)
    background = None
    if args.role == "tafdb":
        dispatcher = live.build_tafdb_role(config, runtime,
                                           wal_dir=args.wal_dir)
    elif args.role == "indexnode":
        dispatcher = live.build_indexnode_role(config, runtime,
                                               wal_dir=args.wal_dir)
        background = asyncio.ensure_future(_purge_loop(dispatcher))
    else:  # proxy
        if not args.tafdb or not args.indexnode:
            raise SystemExit("proxy role needs --tafdb and --indexnode")
        dispatcher = live.build_proxy_role(
            config, runtime, args.tafdb.split(","), args.indexnode,
            wal_dir=args.wal_dir)

    server = WireServer(runtime, dispatcher, host=args.host, port=args.port)
    port = await server.start()
    metrics_server = None
    ready = f"MANTLE-SERVE READY port={port}"
    if args.metrics_port is not None:
        from repro.runtime.obs import MetricsServer

        metrics_server = MetricsServer(runtime, host=args.host,
                                       port=args.metrics_port)
        metrics_port = await metrics_server.start()
        ready += f" metrics={metrics_port}"
    print(ready, flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()

    if background is not None:
        background.cancel()
    if metrics_server is not None:
        await metrics_server.stop()
    await server.stop()
    return 0


def _run_cluster(args) -> int:
    from repro.runtime.live import ProcessCluster

    cluster = ProcessCluster(config_name=args.config, wal_dir=args.wal_dir,
                             trace=args.trace, telemetry=args.telemetry,
                             metrics=args.metrics)
    endpoint = cluster.start()
    print(f"MANTLE-CLUSTER READY proxy={endpoint}", flush=True)
    if cluster.metrics_ports:
        print(f"metrics ports: {cluster.metrics_ports}", flush=True)
    print("press Ctrl-C to stop", flush=True)
    try:
        signal.pause()
    except (KeyboardInterrupt, AttributeError):
        # AttributeError: signal.pause is POSIX-only; fall back to a wait.
        try:
            while True:
                import time
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
    finally:
        codes = cluster.stop()
        print(f"cluster stopped: {codes}", flush=True)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mantle-serve",
        description="Run one Mantle role (or a whole cluster) live.")
    sub = parser.add_subparsers(dest="role", required=True)

    def common(p):
        p.add_argument("--config", default="small",
                       help="config preset: small | base | paper | default")
        p.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files (omit: no wal)")
        p.add_argument("--trace", action="store_true",
                       help="enable wall-clock span tracing "
                            "(also on when the config sets tracing=True)")
        p.add_argument("--telemetry", action="store_true",
                       help="enable windowed wall-clock telemetry")

    for role in ("tafdb", "indexnode", "proxy"):
        p = sub.add_parser(role, help=f"serve the {role} role")
        common(p)
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral)")
        p.add_argument("--metrics-port", type=int, default=None,
                       help="serve a JSON metrics snapshot over HTTP on "
                            "this port (0 = ephemeral; advertised on the "
                            "READY line as metrics=<port>)")
        if role == "proxy":
            p.add_argument("--tafdb", default=None,
                           help="comma-separated TafDB endpoints")
            p.add_argument("--indexnode", default=None,
                           help="IndexNode endpoint")

    p = sub.add_parser("cluster",
                       help="spawn tafdb+indexnode+proxy as child processes")
    common(p)
    p.add_argument("--metrics", action="store_true",
                   help="give every role an ephemeral metrics HTTP port")

    args = parser.parse_args(argv)
    if args.role == "cluster":
        return _run_cluster(args)
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        return loop.run_until_complete(_serve_role(args))
    finally:
        loop.close()


if __name__ == "__main__":
    sys.exit(main())
