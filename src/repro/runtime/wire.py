"""Length-prefixed JSON wire protocol for the live runtime.

Every frame is a 4-byte big-endian payload length followed by a compact,
key-sorted JSON document.  JSON (rather than msgpack, which the protocol
was also designed to carry) keeps the reproduction dependency-free; frames
are small — ops, rows, stat results — so codec throughput is not the
bottleneck, the network round trip is.

Domain values cross the wire through a tagged encoding:

* registered dataclasses (``RowKey``, ``WriteIntent``, ``Dirent``, ...)
  become ``{"__w__": "TypeName", "f": {field: value, ...}}``;
* tuples become ``{"__t__": [...]}`` (JSON has no tuple, and shard routing
  and Raft commands rely on tuple identity);
* :class:`~repro.types.EntryKind` becomes ``{"__k__": "dir"|"obj"}`` and
  :class:`~repro.types.Permission` ``{"__p__": <int mask>}``;
* :class:`~repro.types.OpResult` becomes ``{"__r__": {...}}`` via its own
  ``to_wire``.

The exact byte format is pinned by the golden file in
``tests/runtime/golden_ops_wire.json`` — a change here that alters those
bytes is a protocol break between client and server versions, not a
refactor.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import FrameError
from repro.types import EntryKind, OpResult, Permission

#: Hard ceiling on one frame's payload; anything larger is a framing bug
#: (a readdir page tops out orders of magnitude below this).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Wire tag -> dataclass.  Only types that actually cross a live RPC
#: boundary are registered; registration order is part of the protocol.
_WIRE_TYPES: Dict[str, Type] = {}


def _register_wire_types() -> None:
    # Imported lazily so ``repro.errors`` (which wire.py imports) can be
    # imported by these modules without a cycle.
    from repro.indexnode.server import RenamePrep
    from repro.indexnode.state import LookupOutcome
    from repro.tafdb.rows import AttrDelta, Dirent, Row, RowKey
    from repro.tafdb.shard import WriteIntent
    from repro.types import AccessMeta, AttrMeta, StatResult

    for cls in (RowKey, Dirent, AttrDelta, AttrMeta, Row, WriteIntent,
                AccessMeta, StatResult, LookupOutcome, RenamePrep):
        _WIRE_TYPES[cls.__name__] = cls


def to_jsonable(value: Any) -> Any:
    """Recursively encode ``value`` into JSON-compatible structures."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, Permission):  # IntFlag: test before plain int
        return {"__p__": int(value)}
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, EntryKind):
        return {"__k__": value.value}
    if isinstance(value, OpResult):
        return {"__r__": value.to_wire()}
    if isinstance(value, tuple):
        return {"__t__": [to_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {key: to_jsonable(v) for key, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if not _WIRE_TYPES:
            _register_wire_types()
        name = type(value).__name__
        if name not in _WIRE_TYPES:
            raise FrameError(f"unregistered wire type {name}")
        fields = {f.name: to_jsonable(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__w__": name, "f": fields}
    raise FrameError(f"cannot encode {type(value).__name__} on the wire")


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "__p__" in value and len(value) == 1:
            return Permission(value["__p__"])
        if "__k__" in value and len(value) == 1:
            return EntryKind(value["__k__"])
        if "__r__" in value and len(value) == 1:
            return OpResult.from_wire(value["__r__"])
        if "__t__" in value and len(value) == 1:
            return tuple(from_jsonable(v) for v in value["__t__"])
        if "__w__" in value:
            if not _WIRE_TYPES:
                _register_wire_types()
            cls = _WIRE_TYPES.get(value["__w__"])
            if cls is None:
                raise FrameError(f"unknown wire type {value['__w__']!r}")
            fields = {name: from_jsonable(v)
                      for name, v in value.get("f", {}).items()}
            return cls(**fields)
        return {key: from_jsonable(v) for key, v in value.items()}
    return value


def pack_frame(payload: Any) -> bytes:
    """Encode one message (already passed through :func:`to_jsonable` where
    needed) as a length-prefixed frame."""
    data = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(data)} bytes exceeds limit")
    return _LEN.pack(len(data)) + data


def unpack_payload(data: bytes) -> Any:
    """Decode one frame's payload bytes (without the length prefix)."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc


async def read_frame(reader) -> Any:
    """Read one length-prefixed frame from an asyncio stream reader.

    Raises ``asyncio.IncompleteReadError`` at clean EOF (no partial frame)
    and :class:`~repro.errors.FrameError` on truncation mid-frame or an
    oversized/undecodable payload.
    """
    import asyncio

    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"declared frame length {length} exceeds limit")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"truncated frame: wanted {length} bytes, "
            f"got {len(exc.partial)}") from exc
    return unpack_payload(data)


# -- request/response envelopes ---------------------------------------------

def encode_request(request_id: int, method: str, args: Tuple,
                   kwargs: Dict[str, Any],
                   trace: Optional[Dict[str, Any]] = None) -> bytes:
    """Encode one request frame.

    ``trace`` is optional cross-process span context —
    ``{"proc": <caller process name>, "span": <caller span id>}`` — added
    to the envelope only when tracing is on.  Frames without it are
    byte-identical to the pre-trace protocol (the golden file pins both
    shapes), so traced and untraced peers interoperate.
    """
    payload: Dict[str, Any] = {
        "id": request_id,
        "method": method,
        "args": [to_jsonable(a) for a in args],
        "kwargs": {k: to_jsonable(v) for k, v in kwargs.items()},
    }
    if trace is not None:
        payload["trace"] = trace
    return pack_frame(payload)


def encode_response(request_id: int, result: Any = None,
                    error: Any = None,
                    srv_us: Optional[float] = None) -> bytes:
    """Encode one response frame.

    ``srv_us`` is the server-side handler wall time, stamped only when the
    server's tracer is on; the caller subtracts it from the round-trip
    time to isolate the wire cost (the live analogue of the simulator's
    modelled transit charge).
    """
    if error is not None:
        from repro.errors import MetadataError, error_to_wire
        if not isinstance(error, MetadataError):
            error = MetadataError(
                f"{type(error).__name__}: {error}")
        return pack_frame({"id": request_id, "ok": False,
                           "error": error_to_wire(error)})
    payload: Dict[str, Any] = {"id": request_id, "ok": True,
                               "result": to_jsonable(result)}
    if srv_us is not None:
        payload["srv_us"] = srv_us
    return pack_frame(payload)


def decode_result(payload: Dict[str, Any]) -> Any:
    """Turn a response payload into a result, raising the remote error."""
    if payload.get("ok"):
        return from_jsonable(payload.get("result"))
    from repro.errors import error_from_wire
    raise error_from_wire(payload.get("error") or {})
