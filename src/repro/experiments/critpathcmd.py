"""``mantle-exp critpath`` / ``mantle-exp whatif`` — gating analysis.

``critpath`` reruns a figure's knee point (or a bare mdtest op)
instrumented, extracts every op's critical path from the dynamic span
tree (:mod:`repro.sim.critpath`), then per system

* prints the top gating centers — (host, frame, kind) ranked by the share
  of end-to-end latency they gate (shares sum to 100% by construction),
* prints the contrast against the total-cost profile: per (host, kind),
  how much attributed cost was on some op's path versus **off-path**
  (heartbeats, compaction, fan-out overlap) — the slack a speedup there
  would *not* return to clients,
* renders one exemplar op's path as an indented tree, and
* writes a schema-validated ``critpath_<target>_<system>.json``.

``whatif`` is the validated virtual-speedup loop: predict the effect of a
``--speedup component=FACTORx`` set from critical-path slack alone, then
*rerun the simulation with the override actually applied*
(:class:`~repro.core.config.MantleConfig` ``overrides``) and print
predicted vs measured with the prediction error.  ``--max-error`` turns
the comparison into a gate (CI runs it), with an absolute-delta floor so
a correctly-predicted "this changes nothing" also passes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cluster import build_system
from repro.bench.report import Table
from repro.experiments.base import (
    mdtest_metrics,
    mdtest_metrics_profiled,
    pick,
)
from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)
from repro.experiments.profilecmd import Case, resolve_case
from repro.sim.critpath import (
    CritPath,
    component_of,
    contrast_with_profile,
    critpath_from_tracer,
    predict_speedup_corrected,
    to_critpath_payload,
    validate_critpath,
)
from repro.sim.host import CostModel, CostOverrides, parse_speedup_args
from repro.sim.profile import profile_from_tracer

#: Max relative error of sum(gated) vs sum(op durations) — the telescoping
#: identity is exact, so anything past float dust is an extraction bug.
CONSERVATION_TOLERANCE = 1e-6

#: ``whatif --max-error``: predicted and measured deltas within this many
#: percentage points of baseline latency count as "both approximately
#: nothing" even when the relative error is undefined (off-path probes).
DELTA_FLOOR_FRAC = 0.01


def critpath_point(system: str, target: str, case: Case, scale: str,
                   clients: Optional[int] = None,
                   items: Optional[int] = None,
                   out_base: str = "") -> Dict:
    """Run one system's knee point instrumented; extract + export.

    Raises ``RuntimeError`` if the extracted paths fail to conserve the
    ops' end-to-end latency (the invariant that makes shares meaningful).
    """
    metrics, tracer, telemetry = mdtest_metrics_profiled(
        system, case.op, mode=case.mode,
        clients=clients or pick(scale, *case.clients),
        items=items or pick(scale, *case.items))
    crit = critpath_from_tracer(tracer, name=f"{system} {case.op}")
    err = crit.conservation_error()
    if err > CONSERVATION_TOLERANCE:
        raise RuntimeError(
            f"{system}: critical-path segments cover {1 - err:.6%} of "
            f"end-to-end latency (must telescope exactly)")
    profile = profile_from_tracer(tracer, name=f"{system} {case.op}")
    contrast = contrast_with_profile(crit, profile)
    base = out_base or default_out("critpath", target)
    path = f"{base}_{system}.json"
    payload = to_critpath_payload(crit, contrast)
    ensure_valid(validate_critpath(payload), path)
    write_json_payload(path, payload)
    return {
        "system": system,
        "metrics": metrics,
        "telemetry": telemetry,
        "crit": crit,
        "profile": profile,
        "contrast": contrast,
        "conservation_err": err,
        "path": path,
        "payload": payload,
    }


def gating_table(artifact: Dict, top: int) -> Table:
    """One system's top gating centers, per completed op."""
    crit: CritPath = artifact["crit"]
    ops = max(crit.ops, 1)
    table = Table(
        f"{crit.name}: top gating centers "
        f"({crit.ops} ops, {crit.mean_latency_us:.1f} us/op end-to-end)",
        ["host", "frame", "kind", "us/op", "share", "what-if component"])
    shares = crit.shares()
    for (host, frame, kind), us in crit.top_gating(top):
        table.add_row(host or "-", frame, kind, round(us / ops, 2),
                      f"{shares[(host, frame, kind)]:.1%}",
                      component_of(host, frame, kind) or "-")
    table.add_note(
        "share = fraction of end-to-end client latency gated by this "
        "center (all centers sum to 100%); component names the "
        "`whatif --speedup` knob that scales it, '-' = no single knob")
    return table


def contrast_table(artifact: Dict, top: int) -> Table:
    """Gated vs total attributed cost: where the off-path slack lives."""
    crit: CritPath = artifact["crit"]
    ops = max(crit.ops, 1)
    table = Table(
        f"{crit.name}: on-path vs off-path cost (us per op)",
        ["host", "kind", "gated", "total", "off-path", "on-path frac"])
    for row in artifact["contrast"][:top]:
        table.add_row(row.host or "-", row.kind,
                      round(row.gated_us / ops, 2),
                      round(row.total_us / ops, 2),
                      round(row.offpath_us / ops, 2),
                      f"{row.gated_frac:.0%}")
    table.add_note(
        "off-path = cost the profiler attributes that no op's critical "
        "path runs through (heartbeats, replication absorbed in commit "
        "waits, fan-out overlap); speeding it up returns ~nothing to "
        "clients — `whatif` makes that testable")
    return table


def run_critpath(target: str, scale: str = "quick", out_base: str = "",
                 systems: Optional[List[str]] = None,
                 clients: Optional[int] = None,
                 items: Optional[int] = None,
                 top: int = 12) -> Tuple[List[Table], List[str], List[Dict]]:
    """Analyze ``target`` per system; returns (tables, exemplar lines,
    artifacts)."""
    case = resolve_case(target)
    artifacts = [
        critpath_point(system, target, case, scale, clients=clients,
                       items=items, out_base=out_base)
        for system in (systems or list(case.systems))
    ]
    tables: List[Table] = []
    lines: List[str] = []
    for artifact in artifacts:
        tables.append(gating_table(artifact, top))
        tables.append(contrast_table(artifact, top))
        crit: CritPath = artifact["crit"]
        lines.append(f"exemplar path ({crit.name}, wrote "
                     f"{artifact['path']}):")
        lines.extend("  " + line for line in crit.render_exemplar())
        lines.append("")
    return tables, lines, artifacts


# ---------------------------------------------------------------------------
# whatif: predict from slack, then measure by rerunning with the override.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class WhatIfResult:
    """Predicted-vs-measured outcome of one virtual speedup.

    Two predictions ride along: ``predicted_mean_us`` is the first-order
    **slack** model (open-loop), ``corrected_mean_us`` the queueing-aware
    **corrected** model (slack floored by the closed-loop bottleneck law;
    ``None`` when telemetry was unavailable).  ``model`` selects which
    one :meth:`error_frac` / :meth:`within` judge — both are always
    reported so the gap between them is visible.
    """

    system: str
    op: str
    overrides: CostOverrides
    baseline_mean_us: float
    predicted_mean_us: float
    measured_mean_us: float
    baseline_kops: float
    measured_kops: float
    matched_us_per_op: Dict[str, float]
    model: str = "slack"
    corrected_mean_us: Optional[float] = None
    bottleneck_mean_us: float = 0.0
    bottleneck_station: str = ""

    def _delta_frac(self, mean_us: float) -> float:
        if self.baseline_mean_us <= 0.0:
            return 0.0
        return 1.0 - mean_us / self.baseline_mean_us

    def model_mean_us(self, model: str) -> float:
        if model == "corrected" and self.corrected_mean_us is not None:
            return self.corrected_mean_us
        return self.predicted_mean_us

    @property
    def predicted_delta_frac(self) -> float:
        return self._delta_frac(self.predicted_mean_us)

    @property
    def corrected_delta_frac(self) -> float:
        return self._delta_frac(self.model_mean_us("corrected"))

    @property
    def measured_delta_frac(self) -> float:
        return self._delta_frac(self.measured_mean_us)

    def model_error_frac(self, model: str) -> float:
        """|predicted - measured| relative to the measured delta, for one
        of the two prediction models."""
        predicted = self._delta_frac(self.model_mean_us(model))
        measured = abs(self.measured_delta_frac)
        if measured <= 0.0:
            return 0.0 if abs(predicted) <= 0.0 else float("inf")
        return abs(predicted - self.measured_delta_frac) / measured

    @property
    def error_frac(self) -> float:
        """Error of the *selected* model (``--model``; default slack)."""
        return self.model_error_frac(self.model)

    def model_within(self, model: str, max_error: float) -> bool:
        predicted = self._delta_frac(self.model_mean_us(model))
        if abs(predicted) < DELTA_FLOOR_FRAC and \
                abs(self.measured_delta_frac) < DELTA_FLOOR_FRAC:
            return True
        return self.model_error_frac(model) <= max_error

    def within(self, max_error: float) -> bool:
        """Selected model acceptable: relative error inside ``max_error``,
        or both deltas under the :data:`DELTA_FLOOR_FRAC` floor (a correct
        "this override buys nothing" prediction)."""
        return self.model_within(self.model, max_error)

    def failure_report(self, max_error: float) -> List[str]:
        """Per-model pass/fail lines for the ``--max-error`` gate: which
        bound (slack vs corrected) failed, and by how much."""
        models = ["slack"]
        if self.corrected_mean_us is not None:
            models.append("corrected")
        lines = []
        for model in models:
            err = self.model_error_frac(model)
            predicted = self._delta_frac(self.model_mean_us(model))
            err_text = ("inf (predicted a gain where measurement shows "
                        "none)" if err == float("inf")
                        else f"{err:.1%} of the measured delta")
            verdict = ("within" if self.model_within(model, max_error)
                       else "EXCEEDS")
            active = " [selected]" if model == self.model else ""
            lines.append(
                f"  {model} model{active}: predicted "
                f"-{predicted:.1%} vs measured "
                f"-{self.measured_delta_frac:.1%} -> error {err_text}; "
                f"{verdict} --max-error {max_error:.0%}")
        return lines


def _rerun_with_overrides(system: str, case: Case, overrides: CostOverrides,
                          clients: int, items: int):
    """Measured leg: the same point, uninstrumented, overrides applied.

    Mantle threads them through ``MantleConfig.overrides`` (the exact
    machinery a config change would use); baselines take a pre-scaled
    :class:`CostModel` since they have no config object.
    """
    if system == "mantle":
        from repro.core.config import MantleConfig
        return mdtest_metrics(system, case.op, mode=case.mode,
                              clients=clients, items=items,
                              config=MantleConfig(overrides=overrides))
    return mdtest_metrics(system, case.op, mode=case.mode,
                          clients=clients, items=items,
                          costs=overrides.apply(CostModel()))


def run_whatif(target: str, speedups: Sequence[str],
               system: str = "mantle", scale: str = "quick",
               clients: Optional[int] = None,
               items: Optional[int] = None,
               model: str = "slack") -> Tuple[List[Table], WhatIfResult]:
    """Predict (both models), rerun, compare.  Returns (tables, result).

    ``model`` ("slack" or "corrected") selects which prediction the
    ``--max-error`` gate judges; both are always computed and printed.
    """
    overrides = parse_speedup_args(speedups)
    if not overrides:
        raise ValueError("whatif needs at least one --speedup")
    if model not in ("slack", "corrected"):
        raise ValueError(f"unknown whatif model {model!r}; "
                         "pick slack or corrected")
    case = resolve_case(target)
    clients = clients or pick(scale, *case.clients)
    items = items or pick(scale, *case.items)

    metrics, tracer, telemetry = mdtest_metrics_profiled(
        system, case.op, mode=case.mode, clients=clients, items=items)
    crit = critpath_from_tracer(tracer, name=f"{system} {case.op}")
    profile = profile_from_tracer(tracer, name=f"{system} {case.op}")
    corrected = predict_speedup_corrected(crit, overrides, profile,
                                          telemetry, clients)
    prediction = corrected.slack
    bottleneck = corrected.bottleneck()
    measured = _rerun_with_overrides(system, case, overrides,
                                     clients, items)
    result = WhatIfResult(
        system=system, op=case.op, overrides=overrides,
        baseline_mean_us=crit.mean_latency_us,
        predicted_mean_us=prediction.predicted_mean_us,
        measured_mean_us=measured.mean_latency_us(case.op),
        baseline_kops=metrics.throughput_kops(case.op),
        measured_kops=measured.throughput_kops(case.op),
        matched_us_per_op=prediction.matched_us_per_op,
        model=model,
        corrected_mean_us=corrected.predicted_mean_us,
        bottleneck_mean_us=corrected.bottleneck_mean_us,
        bottleneck_station=(f"{bottleneck.host}/{bottleneck.resource}"
                            if bottleneck is not None else ""))

    knobs = ", ".join(f"{component}={factor:g}x"
                      for component, factor in overrides.speedups)
    table = Table(
        f"what-if {knobs} on {target}/{system} ({case.op}, "
        f"{clients} clients, --model {model})",
        ["metric", "baseline", "slack model", "corrected", "measured"])
    table.add_row("mean latency (us/op)",
                  round(result.baseline_mean_us, 1),
                  round(result.predicted_mean_us, 1),
                  round(result.model_mean_us("corrected"), 1),
                  round(result.measured_mean_us, 1))
    table.add_row("latency delta", "-",
                  f"-{result.predicted_delta_frac:.1%}",
                  f"-{result.corrected_delta_frac:.1%}",
                  f"-{result.measured_delta_frac:.1%}")
    table.add_row("throughput (Kop/s)",
                  round(result.baseline_kops, 2), "-", "-",
                  round(result.measured_kops, 2))
    for component, us in sorted(result.matched_us_per_op.items()):
        table.add_row(f"gated by {component} (us/op)",
                      round(us, 1), "-", "-", "-")
    for which in ("slack", "corrected"):
        err = result.model_error_frac(which)
        if err == float("inf"):
            table.add_note(f"{which} model: predicted a gain where "
                           "measurement shows none")
        else:
            table.add_note(f"{which} model error {err:.1%} of the "
                           "measured delta")
    if bottleneck is not None:
        table.add_note(
            f"bottleneck station {result.bottleneck_station}: "
            f"{bottleneck.utilization:.0%} utilized, mean queue "
            f"{bottleneck.mean_queue:.1f}; closed-loop floor "
            f"{result.bottleneck_mean_us:.1f} us/op "
            f"({'binding' if corrected.bound_binding else 'not binding'} "
            f"vs slack)")
    table.add_note("slack = first-order critical-path model (open-loop); "
                   "corrected = slack floored by the bottleneck law "
                   "clients x max per-op demand; measured = full rerun "
                   "with the override applied to the cost model")
    return [table], result
