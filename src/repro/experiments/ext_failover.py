"""Extension (§5.3): availability timeline through an IndexNode failover.

The paper's fault-tolerance section argues that metadata-server failures
cost only a Raft re-election.  This experiment measures it: clients issue
lookups continuously, the leader is crashed mid-run, and op completions are
bucketed into time windows — showing full throughput before the crash, a
dip bounded by the election timeout, and recovery to full throughput after.

The run is traced end-to-end: a :class:`~repro.sim.trace.Tracer` is
attached before the crash and the winning candidacy's ``raft.election``
span is decomposed with :func:`~repro.sim.critpath.build_critpath`
(``root_category="raft"``), so the report shows *where the unavailability
window went* — durable-vote fsync, vote-counting CPU, or waiting on the
wire for the quorum.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.report import Table
from repro.errors import MetadataError
from repro.experiments.base import pick, register
from repro.sim.critpath import build_critpath
from repro.sim.stats import OpContext
from repro.sim.trace import CAT_RAFT, Tracer
from repro.ops import make_op

_WINDOW_US = 25_000.0


@register("ext-failover", "Availability through leader failover (extension)",
          "lookups dip only for the election window after a leader crash, "
          "then recover fully")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 24, 64)
    duration_us = 400_000.0
    crash_at_us = 120_000.0
    system = build_system("mantle", "quick")
    try:
        system.bulk_mkdir("/w")
        system.bulk_create("/w/obj")
        sim = system.sim
        # Trace the failover (election spans included); attached after the
        # bulk namespace build so the ring holds only the measured run.
        tracer = Tracer()
        tracer.bind(sim)
        sim.tracer = tracer
        events: List[tuple] = []  # (time, ok)
        t0 = sim.now

        def client():
            while sim.now - t0 < duration_us:
                ctx = OpContext("objstat")
                try:
                    yield from system.perform(make_op("objstat", "/w/obj"), ctx=ctx)
                    events.append((sim.now - t0, True))
                except MetadataError:
                    events.append((sim.now - t0, False))
                    yield sim.timeout(1_000)  # client retry pause

        def assassin():
            yield sim.timeout(crash_at_us)
            leader = system.index_group.current_leader()
            if leader is not None:
                system.index_group.crash_node(leader.id)

        procs = [sim.process(client()) for _ in range(clients)]
        procs.append(sim.process(assassin()))
        done = sim.all_of(procs)
        sim.run_until(done)

        table = Table(
            "Extension: lookup completions per 25 ms window "
            f"(leader crashed at {crash_at_us / 1000:.0f} ms)",
            ["window start ms", "ok ops", "failed ops", "phase"])
        num_windows = int(duration_us / _WINDOW_US)
        recovered_at = None
        dipped = False
        pre_crash_rate = None
        for w in range(num_windows):
            lo, hi = w * _WINDOW_US, (w + 1) * _WINDOW_US
            ok = sum(1 for t, good in events if lo <= t < hi and good)
            bad = sum(1 for t, good in events if lo <= t < hi and not good)
            if hi <= crash_at_us:
                phase = "before crash"
                pre_crash_rate = ok if pre_crash_rate is None \
                    else max(pre_crash_rate, ok)
            elif ok < 0.5 * (pre_crash_rate or 1):
                phase = "election window"
                dipped = True
            else:
                phase = "recovered"
                if dipped and recovered_at is None:
                    recovered_at = lo
            table.add_row(round(lo / 1000, 1), ok, bad, phase)
        if recovered_at is not None:
            table.add_note(
                f"service recovered ~{(recovered_at - crash_at_us) / 1000:.0f}"
                " ms after the crash (election timeout is 50-100 ms)")

        # Decompose the winning candidacy: what gated the new leader's
        # election, microsecond by microsecond.
        crit = build_critpath(tracer.spans, name="failover-election",
                              root_category=CAT_RAFT,
                              root_name="raft.election")
        shares = crit.shares()
        election = Table(
            "Extension: critical path of the winning election",
            ["host", "frame", "kind", "gated us", "share"])
        for (host, frame, kind), us in crit.top_gating(10):
            election.add_row(host or "-", frame, kind, round(us, 1),
                             f"{shares[(host, frame, kind)] * 100:.1f}%")
        election.add_note(
            f"{crit.ops} winning candidac{'y' if crit.ops == 1 else 'ies'}"
            f" traced; {crit.mean_latency_us / 1000:.2f} ms from candidacy"
            " to leadership (idle = waiting on the wire for votes)")
        for line in crit.render_exemplar():
            election.add_note(line)
        return [table, election]
    finally:
        system.shutdown()
