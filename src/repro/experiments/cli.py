"""``mantle-exp`` — run the paper's experiments from the command line.

Usage::

    mantle-exp list
    mantle-exp run fig12 [--scale quick|full] [--jobs N]
    mantle-exp all [--scale quick|full] [--jobs N]
    mantle-exp trace fig15 [--scale quick|full] [--out trace_fig15.json]
    mantle-exp telemetry fig14 [--scale quick|full] [--out telemetry_fig14]
    mantle-exp profile fig12 [--diff mantle infinifs] [--top N]
    mantle-exp critpath fig14 [--clients N] [--top N]
    mantle-exp whatif fig14 --speedup tafdb.fsync=2x [--model slack|corrected]
    mantle-exp blame fig14|multitenant [--clients N] [--top N]
    mantle-exp triage fig14 [--clients N] [--top N]

``run --jobs N`` fans a sweep experiment's per-point simulators across N
worker processes; ``all --jobs N`` runs whole experiments concurrently.
Either way the simulated results are identical to a serial run — only
wall-clock changes — and output is printed in deterministic registry order.

``trace`` reruns fig15/table1 with span tracing on, writes a Chrome-trace /
Perfetto JSON, prints the span-tree breakdown, and cross-checks the
span-derived tables against the legacy counters (must agree within 1%).

``telemetry`` reruns a figure's knee points with windowed telemetry on,
prints the saturation analyzer's verdicts plus per-host CPU / cache
hit-ratio timelines, and exports the per-window series as CSV + JSON.

``profile`` reruns a figure's knee point (or a bare mdtest op) with cost
attribution on, prints per-system top self-time tables, writes
flamegraph.pl + speedscope exports, and with ``--diff A B`` prints the
signed per-op cost deltas between two systems with mechanism notes.

``critpath`` extracts what actually gated client latency; ``whatif``
turns that into validated virtual speedups (predict, rerun with the
override applied, compare — ``--model corrected`` adds the queueing-aware
bottleneck-law bound for deep-saturation points, and ``--max-error``
gates on the selected model, reporting per-model pass/fail on failure).

``blame`` attributes every queue microsecond on victims' critical paths
to the op type (and tenant) occupying the contended resource — the
who-delayed-whom matrix; the ``multitenant`` target runs the
storm-vs-victim noisy-neighbour scenario instead of a figure point.

``triage`` reruns a knee point tail-instrumented, change-point-segments
the run into labeled phases (warmup/steady/burst/saturated/drain), and
per anomalous phase folds just that phase's tail exemplars through the
critpath + blame machinery — one sentence per phase saying what gated
the slow ops and who is to blame, with a schema-validated JSON export.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.report import print_tables, table_to_jsonable
from repro.experiments import get_experiment, list_experiments
from repro.experiments.runner import (
    run_experiments,
    wallclock_table,
)


def _cmd_list(_args) -> int:
    for experiment in list_experiments():
        print(f"{experiment.id:8s} {experiment.title}")
        print(f"{'':8s}   paper: {experiment.paper_claim}")
    return 0


def _run_one(exp_id: str, scale: str, json_path=None, jobs: int = 1,
             check_profile: bool = False) -> None:
    experiment = get_experiment(exp_id)
    started = time.time()
    tables = experiment.run(scale=scale, jobs=jobs,
                            check_profile=check_profile)
    header = (f"### {experiment.id}: {experiment.title} "
              f"(scale={scale}, {time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    if json_path:
        payload = {
            "experiment": experiment.id,
            "title": experiment.title,
            "paper_claim": experiment.paper_claim,
            "scale": scale,
            "tables": [table_to_jsonable(t) for t in tables],
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"(wrote {json_path})")


def _cmd_run(args) -> int:
    _run_one(args.experiment, args.scale, json_path=args.json,
             jobs=args.jobs, check_profile=args.check_profile)
    return 0


def _cmd_all(args) -> int:
    started = time.time()

    def show(outcome) -> None:
        header = (f"### {outcome.exp_id}: {outcome.title} "
                  f"(scale={args.scale}, {outcome.wall_s:.1f}s wall)")
        if outcome.ok:
            print_tables(outcome.tables, header=header)
        else:
            print(header)
            print(outcome.error, file=sys.stderr)
        print()

    outcomes = run_experiments(scale=args.scale, jobs=args.jobs,
                               on_result=show)
    # Wall-clock summary, slowest first, so perf regressions are visible
    # without digging through BENCH_wallclock.json.
    summary = wallclock_table(outcomes)
    summary.add_note(f"end-to-end wall time {time.time() - started:.1f}s "
                     f"(jobs={args.jobs})")
    print_tables([summary])
    return 0 if all(o.ok for o in outcomes) else 1


def _cmd_trace(args) -> int:
    from repro.experiments.tracecmd import run_trace

    started = time.time()
    tables, payload = run_trace(args.experiment, scale=args.scale,
                                out_path=args.out)
    header = (f"### trace {args.experiment} (scale={args.scale}, "
              f"{len(payload['traceEvents'])} events, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    for label, stats in sorted(payload.get("traceStats", {}).items()):
        if stats.get("dropped", 0) > 0:
            print(f"trace: WARNING: case {label} dropped "
                  f"{stats['dropped']} of {stats['started']} spans from "
                  f"the ring — aggregates under-count", file=sys.stderr)
    return 0


def _cmd_telemetry(args) -> int:
    from repro.experiments.telemetrycmd import run_telemetry

    started = time.time()
    tables, lines, payload = run_telemetry(
        args.experiment, scale=args.scale, out_base=args.out,
        clients=args.clients, items=args.items, window_us=args.window_us)
    header = (f"### telemetry {args.experiment} (scale={args.scale}, "
              f"{len(payload['rows'])} exported rows, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    print()
    print("\n".join(lines))
    return 0


def _cmd_profile(args) -> int:
    from repro.experiments.profilecmd import run_profile, run_profile_diff

    started = time.time()
    if args.diff:
        base_system, other_system = args.diff
        tables, artifacts = run_profile_diff(
            base_system, other_system, args.experiment, scale=args.scale,
            out_base=args.out, clients=args.clients, items=args.items,
            top=args.top)
    else:
        tables, artifacts = run_profile(
            args.experiment, scale=args.scale, out_base=args.out,
            systems=args.systems, clients=args.clients, items=args.items,
            top=args.top)
    spans = sum(a["profile"].span_count for a in artifacts)
    header = (f"### profile {args.experiment} (scale={args.scale}, "
              f"{len(artifacts)} systems, {spans} spans, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    return 0


def _cmd_critpath(args) -> int:
    from repro.experiments.critpathcmd import run_critpath

    started = time.time()
    tables, lines, artifacts = run_critpath(
        args.experiment, scale=args.scale, out_base=args.out,
        systems=args.systems, clients=args.clients, items=args.items,
        top=args.top)
    ops = sum(a["crit"].ops for a in artifacts)
    header = (f"### critpath {args.experiment} (scale={args.scale}, "
              f"{len(artifacts)} systems, {ops} ops folded, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    print()
    print("\n".join(lines))
    return 0


def _cmd_whatif(args) -> int:
    from repro.experiments.critpathcmd import run_whatif

    started = time.time()
    tables, result = run_whatif(
        args.experiment, args.speedup, system=args.system,
        scale=args.scale, clients=args.clients, items=args.items,
        model=args.model)
    header = (f"### whatif {args.experiment} (scale={args.scale}, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    if args.max_error is not None and not result.within(args.max_error):
        print(f"whatif: --model {result.model} prediction failed the "
              f"--max-error {args.max_error:.0%} gate:", file=sys.stderr)
        for line in result.failure_report(args.max_error):
            print(line, file=sys.stderr)
        return 1
    return 0


def _cmd_blame(args) -> int:
    from repro.experiments.blamecmd import run_blame

    started = time.time()
    tables, lines, artifacts = run_blame(
        args.experiment, scale=args.scale, out_base=args.out,
        systems=args.systems, clients=args.clients, items=args.items,
        top=args.top)
    ops = sum(a["blame"].ops for a in artifacts)
    header = (f"### blame {args.experiment} (scale={args.scale}, "
              f"{len(artifacts)} runs, {ops} ops folded, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    print()
    print("\n".join(lines))
    return 0


def _cmd_triage(args) -> int:
    from repro.experiments.triagecmd import run_triage

    started = time.time()
    tables, lines, artifacts = run_triage(
        args.experiment, scale=args.scale, out_base=args.out,
        systems=args.systems, clients=args.clients, items=args.items,
        top=args.top)
    phases = sum(len(a["phases"]) for a in artifacts)
    header = (f"### triage {args.experiment} (scale={args.scale}, "
              f"{len(artifacts)} systems, {phases} phases, "
              f"{time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    print()
    print("\n".join(lines))
    for artifact in artifacts:
        if artifact["stats"].get("dropped", 0) > 0:
            print(f"triage: {artifact['system']} dropped "
                  f"{artifact['stats']['dropped']} spans from the trace "
                  f"ring (tail exemplars unaffected)", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mantle-exp",
        description="Reproduce the Mantle paper's tables and figures")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="fan sweep points across N worker processes")
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also write the tables as JSON")
    run_parser.add_argument("--check-profile", action="store_true",
                            help="re-derive breakdown columns from the "
                                 "cost profiler and assert agreement "
                                 "(fig13/fig15)")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    all_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run N experiments concurrently")
    trace_parser = sub.add_parser(
        "trace", help="run an experiment traced; export Perfetto JSON")
    trace_parser.add_argument("experiment", choices=("fig15", "table1"))
    trace_parser.add_argument("--scale", choices=("quick", "full"),
                              default="quick")
    trace_parser.add_argument("--out", metavar="PATH", default="",
                              help="Chrome-trace output path "
                                   "(default trace_<experiment>.json)")
    telemetry_parser = sub.add_parser(
        "telemetry",
        help="rerun a figure's knee points instrumented; export CSV/JSON")
    telemetry_parser.add_argument("experiment",
                                  choices=("fig12", "fig14", "fig19"))
    telemetry_parser.add_argument("--scale", choices=("quick", "full"),
                                  default="quick")
    telemetry_parser.add_argument("--out", metavar="BASE", default="",
                                  help="output base path "
                                       "(default telemetry_<experiment>)")
    telemetry_parser.add_argument("--clients", type=int, default=None,
                                  help="override the cases' client count")
    telemetry_parser.add_argument("--items", type=int, default=None,
                                  help="override ops per client")
    telemetry_parser.add_argument("--window-us", type=float, default=None,
                                  help="telemetry window in simulated us "
                                       "(default 1000 quick / 10000 full)")
    profile_parser = sub.add_parser(
        "profile",
        help="rerun a knee point with cost attribution; export flame "
             "graphs")
    profile_parser.add_argument(
        "experiment",
        help="figure id (fig12/fig14/fig19) or mdtest op (objstat, "
             "mkdir, ...)")
    profile_parser.add_argument("--scale", choices=("quick", "full"),
                                default="quick")
    profile_parser.add_argument("--diff", nargs=2, default=None,
                                metavar=("BASE", "OTHER"),
                                help="profile two systems and print the "
                                     "per-frame cost deltas")
    profile_parser.add_argument("--systems", nargs="+", default=None,
                                metavar="SYSTEM",
                                help="override the systems to profile")
    profile_parser.add_argument("--out", metavar="BASE", default="",
                                help="output base path "
                                     "(default profile_<experiment>)")
    profile_parser.add_argument("--clients", type=int, default=None,
                                help="override the case's client count")
    profile_parser.add_argument("--items", type=int, default=None,
                                help="override ops per client")
    profile_parser.add_argument("--top", type=int, default=12,
                                help="rows per self-time / diff table")
    critpath_parser = sub.add_parser(
        "critpath",
        help="extract per-op critical paths; print gating centers and "
             "on/off-path contrast")
    critpath_parser.add_argument(
        "experiment",
        help="figure id (fig12/fig14/fig19) or mdtest op (objstat, "
             "mkdir, ...)")
    critpath_parser.add_argument("--scale", choices=("quick", "full"),
                                 default="quick")
    critpath_parser.add_argument("--systems", nargs="+", default=None,
                                 metavar="SYSTEM",
                                 help="override the systems to analyze")
    critpath_parser.add_argument("--out", metavar="BASE", default="",
                                 help="output base path "
                                      "(default critpath_<experiment>)")
    critpath_parser.add_argument("--clients", type=int, default=None,
                                 help="override the case's client count")
    critpath_parser.add_argument("--items", type=int, default=None,
                                 help="override ops per client")
    critpath_parser.add_argument("--top", type=int, default=12,
                                 help="rows per gating / contrast table")
    whatif_parser = sub.add_parser(
        "whatif",
        help="predict a cost-model speedup from critical-path slack, "
             "then rerun with it applied and compare")
    whatif_parser.add_argument(
        "experiment",
        help="figure id (fig12/fig14/fig19) or mdtest op (objstat, "
             "mkdir, ...)")
    whatif_parser.add_argument("--speedup", action="append", default=[],
                               metavar="COMPONENT=FACTORx",
                               help="virtual speedup, e.g. raft.fsync=2x "
                                    "(repeatable; see repro.sim.host."
                                    "COMPONENT_FIELDS for components)")
    whatif_parser.add_argument("--system", default="mantle",
                               help="system to run (default mantle)")
    whatif_parser.add_argument("--scale", choices=("quick", "full"),
                               default="quick")
    whatif_parser.add_argument("--clients", type=int, default=None,
                               help="override the case's client count")
    whatif_parser.add_argument("--items", type=int, default=None,
                               help="override ops per client")
    whatif_parser.add_argument("--max-error", type=float, default=None,
                               metavar="FRAC",
                               help="exit non-zero if the prediction "
                                    "error exceeds this fraction of the "
                                    "measured delta (e.g. 0.15)")
    whatif_parser.add_argument("--model", choices=("slack", "corrected"),
                               default="slack",
                               help="prediction the --max-error gate "
                                    "judges: first-order slack, or slack "
                                    "floored by the queueing bottleneck "
                                    "law (both are always printed)")
    blame_parser = sub.add_parser(
        "blame",
        help="fold occupant-tagged queue waits into a who-delayed-whom "
             "interference matrix")
    blame_parser.add_argument(
        "experiment",
        help="figure id (fig12/fig14/fig19), mdtest op (objstat, "
             "mkdir, ...), or 'multitenant' for the two-namespace "
             "interference scenario")
    blame_parser.add_argument("--scale", choices=("quick", "full"),
                              default="quick")
    blame_parser.add_argument("--systems", nargs="+", default=None,
                              metavar="SYSTEM",
                              help="override the systems to analyze "
                                   "(ignored for multitenant)")
    blame_parser.add_argument("--out", metavar="BASE", default="",
                              help="output base path "
                                   "(default blame_<experiment>)")
    blame_parser.add_argument("--clients", type=int, default=None,
                              help="override the case's client count")
    blame_parser.add_argument("--items", type=int, default=None,
                              help="override ops per client")
    blame_parser.add_argument("--top", type=int, default=12,
                              help="rows per culprit table")
    triage_parser = sub.add_parser(
        "triage",
        help="phase-segment a tail-instrumented run and blame each "
             "anomalous phase's slow ops")
    triage_parser.add_argument(
        "experiment",
        help="figure id (fig12/fig14/fig19) or mdtest op (objstat, "
             "mkdir, ...)")
    triage_parser.add_argument("--scale", choices=("quick", "full"),
                               default="quick")
    triage_parser.add_argument("--systems", nargs="+", default=None,
                               metavar="SYSTEM",
                               help="override the systems to triage")
    triage_parser.add_argument("--out", metavar="BASE", default="",
                               help="output base path "
                                    "(default triage_<experiment>)")
    triage_parser.add_argument("--clients", type=int, default=None,
                               help="override the case's client count")
    triage_parser.add_argument("--items", type=int, default=None,
                               help="override ops per client")
    triage_parser.add_argument("--top", type=int, default=12,
                               help="rows per gating/blame table")
    from repro.experiments.livecmd import add_live_parser, cmd_live
    add_live_parser(sub)
    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "all": _cmd_all,
                "trace": _cmd_trace, "telemetry": _cmd_telemetry,
                "profile": _cmd_profile, "critpath": _cmd_critpath,
                "whatif": _cmd_whatif, "blame": _cmd_blame,
                "triage": _cmd_triage, "live": cmd_live}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
