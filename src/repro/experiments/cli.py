"""``mantle-exp`` — run the paper's experiments from the command line.

Usage::

    mantle-exp list
    mantle-exp run fig12 [--scale quick|full]
    mantle-exp all [--scale quick|full]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.report import print_tables, table_to_jsonable
from repro.experiments import get_experiment, list_experiments


def _cmd_list(_args) -> int:
    for experiment in list_experiments():
        print(f"{experiment.id:8s} {experiment.title}")
        print(f"{'':8s}   paper: {experiment.paper_claim}")
    return 0


def _run_one(exp_id: str, scale: str, json_path=None) -> None:
    experiment = get_experiment(exp_id)
    started = time.time()
    tables = experiment.run(scale=scale)
    header = (f"### {experiment.id}: {experiment.title} "
              f"(scale={scale}, {time.time() - started:.1f}s wall)")
    print_tables(tables, header=header)
    if json_path:
        payload = {
            "experiment": experiment.id,
            "title": experiment.title,
            "paper_claim": experiment.paper_claim,
            "scale": scale,
            "tables": [table_to_jsonable(t) for t in tables],
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"(wrote {json_path})")


def _cmd_run(args) -> int:
    _run_one(args.experiment, args.scale, json_path=args.json)
    return 0


def _cmd_all(args) -> int:
    for experiment in list_experiments():
        _run_one(experiment.id, args.scale)
        print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mantle-exp",
        description="Reproduce the Mantle paper's tables and figures")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also write the tables as JSON")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "all": _cmd_all}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
