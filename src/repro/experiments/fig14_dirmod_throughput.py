"""Figure 14: throughput of directory modification operations.

Paper: in mkdir-e Tectonic and InfiniFS are very close, LocoFS worst
(throttled by Raft), Mantle highest.  In mkdir-s, Tectonic/LocoFS serialise
on the parent latch, InfiniFS's atomic primitives avoid retries but still
fall short; Mantle's delta records deliver 1.96x over InfiniFS.  In
dirrename-e Mantle wins despite loop-detection cost; in dirrename-s the
baselines degrade heavily while Mantle keeps the highest performance
(overall speedups 1.20-20.9x / 1.16-116x / 2.87-80.78x).
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import (map_points, mdtest_metrics_telemetry,
                                    pick, register)

CASES = (("mkdir", "exclusive"), ("mkdir", "shared"),
         ("dirrename", "exclusive"), ("dirrename", "shared"))


def _dirmod_point(point):
    """One (case, system) sweep cell -> (throughput, retries, bottleneck)."""
    system_name, op, mode, clients, items = point
    metrics, _telemetry, verdict = mdtest_metrics_telemetry(
        system_name, op, mode=mode, clients=clients, items=items)
    return metrics.throughput_kops(), metrics.retries, verdict.label


@register("fig14", "Throughput of directory modifications",
          "Mantle highest in all four cases; delta records rescue the "
          "shared-directory cases")
def run(scale: str = "quick", jobs: int = 1) -> List[Table]:
    clients = pick(scale, 64, 160)
    items = pick(scale, 10, 24)
    table = Table(
        "Figure 14: directory-modification throughput (Kop/s)",
        ["case"] + list(SYSTEMS) +
        ["mantle speedup vs best baseline", "baseline retries (worst)"])
    bottleneck_table = Table(
        "Figure 14 bottleneck attribution (saturation analyzer, "
        "steady-state window)",
        ["case"] + list(SYSTEMS))
    points = [(system_name, op, mode, clients, items)
              for op, mode in CASES for system_name in SYSTEMS]
    results = map_points(_dirmod_point, points, jobs=jobs)
    for i, (op, mode) in enumerate(CASES):
        suffix = "-s" if mode == "shared" else "-e"
        row = results[i * len(SYSTEMS):(i + 1) * len(SYSTEMS)]
        throughput = {s: r[0] for s, r in zip(SYSTEMS, row)}
        retries = {s: r[1] for s, r in zip(SYSTEMS, row)}
        labels = {s: r[2] for s, r in zip(SYSTEMS, row)}
        best_baseline = max(throughput[s] for s in SYSTEMS if s != "mantle")
        table.add_row(
            f"{op}{suffix}",
            *[round(throughput[s], 2) for s in SYSTEMS],
            round(ratio(throughput["mantle"], best_baseline), 2),
            max(retries[s] for s in SYSTEMS if s != "mantle"))
        bottleneck_table.add_row(f"{op}{suffix}",
                                 *[labels[s] for s in SYSTEMS])
    table.add_note("paper: mkdir-s Mantle/InfiniFS = 1.96x; '-s' collapses "
                   "Tectonic via aborts and InfiniFS renames via 2PC "
                   "retries; LocoFS pinned to its per-op Raft fsync floor")
    bottleneck_table.add_note("'-s' cases flip baselines from cpu/fsync "
                              "saturation to contention (aborts/retries); "
                              "Mantle's delta records keep it on hardware "
                              "limits")
    return [table, bottleneck_table]
