"""Table 3: characteristics of the five Cluster-C production namespaces.

Paper: C1-C5 hold 75 M - 3.2 B objects with 28.1-62.0 % small objects and
peak production throughputs of 175-400 Kop/s (lookup) and 9-24 Kop/s
(mkdir) — "only a fraction of Mantle's full throughput capacity".

Reproduction: the published characteristics are carried as data; we
synthesise each namespace's shape and then *measure* Mantle's sustainable
lookup and mkdir throughput at bench scale, confirming the headroom claim
(measured capacity comfortably above the scaled production peaks).
"""

from __future__ import annotations

from typing import List

from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics, pick, register
from repro.workloads.profiles import TABLE3_PROFILES


@register("table3", "Production namespaces (Cluster C)",
          "peaks of 175-400 Kop/s lookup and 9-24 Kop/s mkdir leave "
          "Mantle significant headroom")
def run(scale: str = "quick") -> List[Table]:
    profiles = Table(
        "Table 3: namespace characteristics (published data)",
        ["name", "#objects", "#dirs", "small obj %", "peak lookup Kop/s",
         "peak mkdir Kop/s"])
    raw = {
        "C1": ("3.2B", "27M"), "C2": ("2.1B", "194M"),
        "C3": ("1.2B", "145M"), "C4": ("0.8B", "88M"),
        "C5": ("75M", "9M"),
    }
    for profile in TABLE3_PROFILES:
        objs, dirs = raw[profile.name]
        profiles.add_row(profile.name, objs, dirs,
                         round(100 * profile.small_object_fraction, 1),
                         profile.peak_lookup_kops, profile.peak_mkdir_kops)

    clients = pick(scale, 64, 160)
    items = pick(scale, 12, 24)
    lookup = mdtest_metrics("mantle", "objstat", clients=clients, items=items)
    mkdir = mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    capacity = Table(
        "Table 3 (derived): measured Mantle capacity at bench scale",
        ["metric", "measured Kop/s", "max production peak (paper)",
         "headroom x (vs scaled peak)"])
    # The bench cluster is ~1/8 of the paper's hardware; scale peaks down
    # accordingly for the headroom comparison.
    hw_fraction = 8.0
    peak_lookup = max(p.peak_lookup_kops for p in TABLE3_PROFILES)
    peak_mkdir = max(p.peak_mkdir_kops for p in TABLE3_PROFILES)
    capacity.add_row("lookup", round(lookup.throughput_kops(), 1),
                     peak_lookup,
                     round(lookup.throughput_kops()
                           / (peak_lookup / hw_fraction), 2))
    capacity.add_row("mkdir", round(mkdir.throughput_kops(), 1),
                     peak_mkdir,
                     round(mkdir.throughput_kops()
                           / (peak_mkdir / hw_fraction), 2))
    capacity.add_note("headroom > 1 reproduces the paper's 'production "
                      "peaks are only a fraction of capacity' claim")
    return [profiles, capacity]
