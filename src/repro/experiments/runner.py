"""Parallel experiment executor behind ``mantle-exp all --jobs N``.

Every experiment owns an independent :class:`repro.sim.core.Simulator`, so
experiments are embarrassingly parallel: this module fans them out over a
``multiprocessing`` pool and merges the results back in registry order, so
the output is byte-identical no matter how many workers ran or in which
order they finished.  Simulated results are unaffected by parallelism by
construction — each worker runs exactly the code the serial path runs.

Sweep-style experiments additionally fan their per-point simulators across
workers via :func:`repro.experiments.base.map_points` when invoked with
``jobs > 1`` (``mantle-exp run fig19 --jobs 4``).
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from typing import List, Optional, Sequence

from repro.bench.report import Table
from repro.experiments.base import get_experiment, list_experiments


@dataclasses.dataclass
class ExperimentOutcome:
    """Result of one experiment run: tables plus wall-clock accounting."""

    exp_id: str
    title: str
    wall_s: float
    tables: List[Table]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_worker(args) -> ExperimentOutcome:
    """Pool worker: run one experiment and time it (module-level for
    pickling)."""
    exp_id, scale, jobs = args
    # Imported for its side effect: populates the registry in freshly
    # spawned workers (fork inherits it, spawn does not).
    import repro.experiments  # noqa: F401
    experiment = get_experiment(exp_id)
    started = time.perf_counter()
    try:
        tables = experiment.run(scale=scale, jobs=jobs)
    except Exception:  # noqa: BLE001 - reported to the merge step
        return ExperimentOutcome(exp_id, experiment.title,
                                 time.perf_counter() - started, [],
                                 error=traceback.format_exc())
    return ExperimentOutcome(exp_id, experiment.title,
                             time.perf_counter() - started, tables)


def resolve_ids(exp_ids: Optional[Sequence[str]]) -> List[str]:
    """Normalise a user-supplied id list to registry order (deterministic
    merge order); ``None`` means every registered experiment."""
    if exp_ids is None:
        return [e.id for e in list_experiments()]
    known = {e.id for e in list_experiments()}
    ordered = [e.id for e in list_experiments() if e.id in set(exp_ids)]
    unknown = [i for i in exp_ids if i not in known]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")
    return ordered


def run_experiments(exp_ids: Optional[Sequence[str]] = None,
                    scale: str = "quick", jobs: int = 1,
                    sweep_jobs: int = 1, quiet: bool = False,
                    on_result=None) -> List[ExperimentOutcome]:
    """Run experiments, optionally across ``jobs`` worker processes.

    Results are always returned (and streamed to ``on_result``) in registry
    order regardless of completion order.  ``sweep_jobs`` is forwarded to
    each experiment's own point-level fan-out and should stay 1 when
    ``jobs > 1`` to avoid nested pools.
    """
    ids = resolve_ids(exp_ids)
    outcomes: List[ExperimentOutcome] = []

    def emit(outcome: ExperimentOutcome) -> None:
        outcomes.append(outcome)
        if on_result is not None and not quiet:
            on_result(outcome)

    if jobs <= 1 or len(ids) <= 1:
        for exp_id in ids:
            emit(_run_worker((exp_id, scale, sweep_jobs)))
        return outcomes

    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
    tasks = [(exp_id, scale, sweep_jobs) for exp_id in ids]
    with ctx.Pool(min(jobs, len(ids))) as pool:
        # imap (not imap_unordered): completion order may vary, delivery
        # order is registry order — deterministic merge for free.
        for outcome in pool.imap(_run_worker, tasks):
            emit(outcome)
    return outcomes


def wallclock_table(outcomes: Sequence[ExperimentOutcome]) -> Table:
    """Per-experiment wall-clock summary, slowest first."""
    total = sum(o.wall_s for o in outcomes)
    table = Table("Wall-clock per experiment (slowest first)",
                  ["experiment", "wall (s)", "% of total", "status"])
    for outcome in sorted(outcomes, key=lambda o: -o.wall_s):
        table.add_row(
            outcome.exp_id,
            round(outcome.wall_s, 2),
            round(100.0 * outcome.wall_s / total, 1) if total > 0 else 0.0,
            "ok" if outcome.ok else "ERROR")
    table.add_note(f"total {total:.1f}s across {len(outcomes)} experiments")
    return table
