"""Extension (§7.2): co-locating IndexNodes of multiple namespaces.

Paper: "we maintain a shared pool of physical servers to host the IndexNode
replicas for all namespaces... leaders of smaller namespaces can share a
node, while leaders of large, high-traffic namespaces can be assigned
exclusive nodes."

We measure the trade-off: two namespaces on a shared 3-host pool versus
dedicated hosts, under (a) light traffic — where sharing is free — and
(b) a noisy neighbour — where the victim's latency inflates, motivating
the paper's dynamic leader rebalancing.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.core.multitenant import MantleDeployment
from repro.experiments.base import pick, register
from repro.sim.stats import OpContext
from repro.ops import make_op


def _measure(colocate: bool, victim_clients: int, neighbor_clients: int,
             ops: int):
    config = MantleConfig(num_db_servers=6, num_db_shards=24, db_cores=4,
                          num_proxies=4, proxy_cores=16, index_cores=4)
    deployment = MantleDeployment(
        config, shared_index_pool=3 if colocate else 0)
    try:
        victim = deployment.create_namespace("victim", colocate=colocate)
        neighbor = deployment.create_namespace("neighbor",
                                               colocate=colocate)
        for system in (victim, neighbor):
            system.bulk_mkdir("/w")
            system.bulk_create("/w/obj")
        sim = deployment.sim
        latencies = []

        def client(system, count, sink):
            for _ in range(count):
                ctx = OpContext("objstat")
                yield from system.perform(make_op("objstat", "/w/obj"), ctx=ctx)
                if sink is not None:
                    sink.append(ctx.latency)

        procs = [sim.process(client(victim, ops, latencies))
                 for _ in range(victim_clients)]
        procs += [sim.process(client(neighbor, ops, None))
                  for _ in range(neighbor_clients)]
        done = sim.all_of(procs)
        sim.run_until(done)
        return sum(latencies) / len(latencies)
    finally:
        deployment.shutdown()


@register("ext-coloc", "IndexNode co-location trade-off (extension)",
          "sharing a host pool is free at light load; a noisy neighbour "
          "inflates the victim's latency, motivating leader rebalancing")
def run(scale: str = "quick") -> List[Table]:
    ops = pick(scale, 15, 30)
    table = Table(
        "Extension: victim namespace objstat latency (us)",
        ["placement", "neighbour load", "victim mean latency us",
         "vs dedicated"])
    dedicated_quiet = _measure(False, 4, 0, ops)
    dedicated_noisy = _measure(False, 4, 96, ops)
    shared_quiet = _measure(True, 4, 0, ops)
    shared_noisy = _measure(True, 4, 96, ops)
    table.add_row("dedicated hosts", "idle", round(dedicated_quiet, 1), 1.0)
    table.add_row("dedicated hosts", "96 clients",
                  round(dedicated_noisy, 1),
                  round(ratio(dedicated_noisy, dedicated_quiet), 2))
    table.add_row("shared pool", "idle", round(shared_quiet, 1),
                  round(ratio(shared_quiet, dedicated_quiet), 2))
    table.add_row("shared pool", "96 clients", round(shared_noisy, 1),
                  round(ratio(shared_noisy, dedicated_quiet), 2))
    table.add_note("dedicated placement isolates the victim from the "
                   "neighbour; the shared pool does not — the cost side of "
                   "§7.2's utilisation win")
    return [table]
