"""Figure 17: impact of path depth on resolution latency.

Paper: at depth 10, Tectonic and InfiniFS are 6.82x and 6.4x their
single-level latency (Tectonic linear in depth; InfiniFS throttled by
thread over-provisioning); LocoFS tracks Mantle until depth ~6, then its
CPU becomes the bottleneck; Mantle's depth-10 latency is only 1.09x its
single-level latency.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import map_points, mdtest_metrics, pick, register
from repro.sim.stats import PHASE_LOOKUP

DEPTHS = (2, 4, 6, 8, 10)


def _lookup_point(point) -> float:
    """One (system, depth) sweep cell -> mean lookup-phase latency."""
    system_name, depth, clients, items = point
    metrics = mdtest_metrics(system_name, "objstat", depth=depth,
                             clients=clients, items=items)
    return metrics.phase_breakdown("objstat")[PHASE_LOOKUP]


@register("fig17", "Impact of depth on path resolution",
          "Tectonic grows linearly with depth (6.82x at 10); Mantle stays "
          "flat (1.09x)")
def run(scale: str = "quick", jobs: int = 1) -> List[Table]:
    clients = pick(scale, 48, 128)
    items = pick(scale, 10, 24)
    depths = DEPTHS
    table = Table(
        "Figure 17: mean lookup latency (us) vs path depth",
        ["system"] + [f"depth {d}" for d in depths] +
        ["depth10 / depth2", "paper ratio"])
    paper_ratio = {"tectonic": 6.82, "infinifs": 6.4,
                   "locofs": float("nan"), "mantle": 1.09}
    points = [(system_name, depth, clients, items)
              for system_name in SYSTEMS for depth in depths]
    results = map_points(_lookup_point, points, jobs=jobs)
    for i, system_name in enumerate(SYSTEMS):
        lookups = results[i * len(depths):(i + 1) * len(depths)]
        table.add_row(
            system_name,
            *[round(v, 1) for v in lookups],
            round(ratio(lookups[-1], lookups[0]), 2),
            paper_ratio[system_name])
    table.add_note("paper normalises depth 10 to depth 1; we use depth 2 "
                   "as the shallowest point (a depth-1 object sits in the "
                   "root).  LocoFS's paper ratio is not quoted numerically.")
    return [table]
