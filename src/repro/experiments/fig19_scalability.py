"""Figure 19: Mantle's scalability in namespace size and client count.

Paper: (a) objstat/create throughput is flat from 1 B to 10 B entries;
(b) create scales to ~133.5 Kop/s at 512 threads then hits TafDB's
ceiling; objstat saturates a single node at ~376.5 Kop/s (512 threads),
reaches 1288 Kop/s with 2 followers and 1894.5 Kop/s with 2 extra
learners at 2048 threads.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import map_points, pick, register
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.namespace import build_namespace, populate


def _run(config: MantleConfig, op: str, clients: int, items: int,
         prefill_dirs: int = 0):
    from repro.bench.analyze import classify_run
    from repro.sim.telemetry import Telemetry

    system = build_system("mantle", "quick", config=config)
    try:
        if prefill_dirs:
            populate(system, build_namespace(num_dirs=prefill_dirs,
                                             objects_per_dir=10, seed=5,
                                             root="/bulk"))
        # Telemetry attaches after the prefill so the saturation window
        # reflects the measured workload, not bulk loading.
        telemetry = Telemetry()
        system.sim.telemetry = telemetry
        workload = MdtestWorkload(op, depth=10, items=items,
                                  num_clients=clients)
        metrics = run_workload(system, workload)
        verdict = classify_run(system, metrics, telemetry)
        return metrics.throughput_kops(), verdict.label
    finally:
        system.shutdown()


def _scal_point(point):
    """One sweep cell: (config, op, clients, items, prefill) ->
    (Kop/s, bottleneck label)."""
    config, op, clients, items, prefill = point
    return _run(config, op, clients, items, prefill)


@register("fig19", "Scalability: namespace size and client count",
          "flat throughput up to 10B-entry namespaces; follower/learner "
          "reads scale lookups ~5x past a single node")
def run(scale: str = "quick", jobs: int = 1) -> List[Table]:
    items = pick(scale, 10, 20)
    clients = pick(scale, 48, 96)

    size_table = Table(
        "Figure 19a: throughput vs namespace size (Kop/s)",
        ["pre-filled entries", "objstat", "create"])
    prefills = pick(scale, (0, 2000, 8000), (0, 10000, 50000))
    size_points = [(MantleConfig(), op, clients, items, prefill)
                   for prefill in prefills for op in ("objstat", "create")]
    size_results = map_points(_scal_point, size_points, jobs=jobs)
    for i, prefill in enumerate(prefills):
        size_table.add_row(
            prefill * 11 if prefill else 0,  # dirs + 10 objects each
            round(size_results[2 * i][0], 1),
            round(size_results[2 * i + 1][0], 1))
    size_table.add_note("paper sweeps 1B-10B entries; hash-partitioned "
                        "shards and hash caches are size-invariant, which "
                        "is the property under test")

    client_table = Table(
        "Figure 19b: throughput vs concurrent clients (Kop/s)",
        ["clients", "create", "objstat (no follower read)",
         "objstat +followers", "objstat +learners",
         "learners/no-follower speedup"])
    leader_only = MantleConfig(enable_follower_read=False)
    followers = MantleConfig(enable_follower_read=True)
    learners = MantleConfig(enable_follower_read=True, num_learners=2)
    counts = pick(scale, (32, 128, 320), (64, 256, 640))
    client_points = []
    for count in counts:
        client_points += [
            (MantleConfig(), "create", count, items, 0),
            (leader_only, "objstat", count, items, 0),
            (followers, "objstat", count, items, 0),
            (learners, "objstat", count, items, 0),
        ]
    bottleneck_table = Table(
        "Figure 19b bottleneck attribution (saturation analyzer, "
        "steady-state window)",
        ["clients", "create", "objstat (no follower read)",
         "objstat +followers", "objstat +learners"])
    client_results = map_points(_scal_point, client_points, jobs=jobs)
    for i, count in enumerate(counts):
        cells = client_results[4 * i:4 * i + 4]
        create_kops, solo, with_followers, with_learners = (
            c[0] for c in cells)
        client_table.add_row(
            count,
            round(create_kops, 1),
            round(solo, 1),
            round(with_followers, 1),
            round(with_learners, 1),
            round(ratio(with_learners, solo), 2))
        bottleneck_table.add_row(count, *[c[1] for c in cells])
    client_table.add_note("paper: leader-only objstat levels at ~376 Kop/s, "
                          "+2 followers 1288, +2 learners 1894 (2048 "
                          "threads); create caps at TafDB capacity")
    bottleneck_table.add_note("the objstat knee is the leader IndexNode's "
                              "CPU; followers/learners shift it back to the "
                              "wire, create hits TafDB first")
    return [size_table, client_table, bottleneck_table]
