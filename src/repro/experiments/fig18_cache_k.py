"""Figure 18: impact of k in TopDirPathCache.

Paper: lookup latency rises with k (at k=3, normalised latency 0.32 versus
Mantle-base, 31.1 % above k=1) while memory falls steeply (k=3 uses 12 % of
the memory of caching every result — an 88 % reduction); production uses
k=3.  Follower read is disabled for this study.

Reproduction detail: the memory effect needs a namespace whose fan-out
lives near the leaves (many sibling directories per deep parent) — exactly
what production trees look like.  We build such a tree (a shared trunk that
fans out over the last three levels), issue lookups at saturation, and
report latency, realised cache memory, and the ns4-derived cacheable
fraction per k.
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import pick, register
from repro.paths import truncate_prefix
from repro.workloads.namespace import ensure_chain
from repro.workloads.profiles import profile_by_name


class _BushyLookupWorkload:
    """objstat over a trunk-then-fanout tree: trunk depth 6, then 8x4x4
    leaf directories each holding objects (depth-11 object paths)."""

    TRUNK_DEPTH = 6
    FANOUT = (8, 4, 4)
    OBJECTS_PER_LEAF = 2

    def __init__(self, num_clients: int, items: int, seed: int = 5):
        self.num_clients = num_clients
        self.items = items
        self._objects: List[str] = []
        self._rng = random.Random(seed)

    def setup(self, system) -> None:
        trunk = ensure_chain(system, "/bushy", self.TRUNK_DEPTH - 1)
        self._objects = []
        for a in range(self.FANOUT[0]):
            pa = f"{trunk}/a{a}"
            system.bulk_mkdir(pa)
            for b in range(self.FANOUT[1]):
                pb = f"{pa}/b{b}"
                system.bulk_mkdir(pb)
                for c in range(self.FANOUT[2]):
                    pc = f"{pb}/c{c}"
                    system.bulk_mkdir(pc)
                    for o in range(self.OBJECTS_PER_LEAF):
                        path = f"{pc}/o{o}.bin"
                        system.bulk_create(path)
                        self._objects.append(path)

    def client_ops(self, cid: int):
        rng = random.Random((cid << 16) ^ 77)
        for _ in range(self.items):
            yield ("objstat", (rng.choice(self._objects),))


def _measure(k: int, enable_cache: bool, clients: int, items: int):
    config = MantleConfig(enable_follower_read=False,
                          enable_path_cache=enable_cache, path_cache_k=k)
    system = build_system("mantle", "quick", config=config)
    try:
        workload = _BushyLookupWorkload(clients, items)
        metrics = run_workload(system, workload)
        leader = system.index_group.leader_or_raise()
        cache = leader.state_machine.cache
        table = leader.state_machine.table
        return (metrics.mean_latency_us("objstat"), cache.memory_bytes,
                len(cache), cache.hit_rate, table.probes_per_resolve)
    finally:
        system.shutdown()


def _ns4_coverage(k: int) -> float:
    """Fraction of ns4's directories cacheable at truncation distance k."""
    spec = profile_by_name("ns4").synthesize(scale_entries=2000, seed=44)
    cacheable = set()
    for path in spec.objects:
        prefix = truncate_prefix(path, k)
        if prefix != "/":
            cacheable.add(prefix)
    return len(cacheable) / max(1, len(spec.directories))


@register("fig18", "Impact of k in TopDirPathCache",
          "latency grows with k, memory shrinks ~88% from k=1 to k=3; "
          "k=3 is the production balance point")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 112, 256)
    items = pick(scale, 12, 24)
    base = _measure(0, False, clients, items)
    base_latency, base_probes = base[0], base[4]
    table = Table(
        "Figure 18: lookup latency and cache memory vs k (depth-11 paths)",
        ["k", "latency us", "normalised to base", "vs k=1",
         "cache entries", "cache bytes", "memory vs k=1", "hit rate",
         "index probes/resolve", "ns4 coverage"])
    k1_latency = None
    k1_memory = None
    for k in (1, 2, 3, 4, 5):
        latency, memory, entries, hit_rate, probes = _measure(
            k, True, clients, items)
        if k == 1:
            k1_latency, k1_memory = latency, memory
        table.add_row(
            k,
            round(latency, 1),
            round(ratio(latency, base_latency), 3),
            round(ratio(latency, k1_latency), 3),
            entries,
            memory,
            round(ratio(memory, k1_memory), 3),
            round(hit_rate, 3),
            round(probes, 2),
            round(_ns4_coverage(k), 3))
    table.add_note(f"Mantle-base (cache off) latency: {base_latency:.1f} us; "
                   "paper: k=3 normalised latency 0.32, memory 12% of k=1, "
                   "31.1% slower than k=1")
    table.add_note("index probes/resolve is the IndexTable walk the cache "
                   f"could not shortcut (cache-off baseline: "
                   f"{base_probes:.2f})")
    return [table]
