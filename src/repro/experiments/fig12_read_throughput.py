"""Figure 12: throughput of object operations and directory reads.

Paper ordering (worst to best) for create/delete/objstat/dirstat:
Tectonic < InfiniFS (+0.19-0.37x) < LocoFS (+0.32-0.83x over InfiniFS)
< Mantle; overall Mantle's speedups are 2.49-4.30x over Tectonic,
1.96-3.44x over InfiniFS and 1.07-2.50x over LocoFS, with create the
closest race against LocoFS.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import (map_points, mdtest_metrics_telemetry,
                                    pick, register)

OPS = ("create", "delete", "objstat", "dirstat")


def _throughput_point(point):
    """One (system, op) sweep cell; each runs its own Simulator.

    Returns ``(Kop/s, bottleneck label)`` — telemetry is attached per
    point so the saturation analyzer can attribute the knee, and it is
    pure bookkeeping, so throughput is identical to an unmetered run.
    """
    system_name, op, clients, items = point
    metrics, _telemetry, verdict = mdtest_metrics_telemetry(
        system_name, op, clients=clients, items=items)
    return metrics.throughput_kops(), verdict.label


@register("fig12", "Throughput of object ops and directory reads",
          "Tectonic < InfiniFS < LocoFS < Mantle; Mantle 2.49-4.30x over "
          "Tectonic")
def run(scale: str = "quick", jobs: int = 1) -> List[Table]:
    clients = pick(scale, 64, 192)
    items = pick(scale, 12, 30)
    table = Table(
        "Figure 12: throughput (Kop/s), depth-10 paths",
        ["op"] + list(SYSTEMS) + ["mantle/tectonic", "mantle/infinifs",
                                  "mantle/locofs"])
    bottleneck_table = Table(
        "Figure 12 bottleneck attribution (saturation analyzer, "
        "steady-state window)",
        ["op"] + list(SYSTEMS))
    points = [(system_name, op, clients, items)
              for op in OPS for system_name in SYSTEMS]
    results = map_points(_throughput_point, points, jobs=jobs)
    for i, op in enumerate(OPS):
        row = results[i * len(SYSTEMS):(i + 1) * len(SYSTEMS)]
        throughput = dict(zip(SYSTEMS, [kops for kops, _label in row]))
        labels = dict(zip(SYSTEMS, [label for _kops, label in row]))
        table.add_row(
            op,
            *[round(throughput[s], 1) for s in SYSTEMS],
            round(ratio(throughput["mantle"], throughput["tectonic"]), 2),
            round(ratio(throughput["mantle"], throughput["infinifs"]), 2),
            round(ratio(throughput["mantle"], throughput["locofs"]), 2))
        bottleneck_table.add_row(op, *[labels[s] for s in SYSTEMS])
    table.add_note("paper speedups: 2.49-4.30x (Tectonic), 1.96-3.44x "
                   "(InfiniFS), 1.07-2.50x (LocoFS); create is the closest "
                   "race against LocoFS")
    bottleneck_table.add_note("baselines pin their TafDB/shard servers' CPU "
                              "while Mantle's reads stay wire-dominated — "
                              "the paper's §7.2 mechanism")
    return [table, bottleneck_table]
