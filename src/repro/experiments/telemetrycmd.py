"""``mantle-exp telemetry`` — rerun a figure's knee points instrumented.

For each supported figure this reruns one or two *representative* sweep
points (the saturated knee plus a contrasting case) with windowed
telemetry attached, then

* prints the saturation analyzer's verdict per case — bottleneck label,
  the four scores behind it and the hot host,
* renders terminal timelines: per-host CPU busy-fraction, the index
  cache hit-ratio, the in-flight RPC level and the per-window p99 op
  latency (from the merged windowed digests), one sparkline column per
  telemetry window of simulated time,
* prints the primary case's per-op latency digest
  (:func:`repro.bench.report.latency_summary_table`), and
* exports the primary case's per-window series as
  ``telemetry_<fig>.csv`` / ``.json`` (schema
  :data:`repro.sim.telemetry.EXPORT_COLUMNS`, checked with
  :func:`repro.sim.telemetry.validate_rows` before writing).

Telemetry is pure bookkeeping, so the rerun's simulated results are
bit-identical to the uninstrumented figure run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.bench.analyze import (
    hit_ratio_series,
    latency_p99_series,
    utilization_series,
)
from repro.bench.report import Table, latency_summary_table
from repro.experiments.base import mdtest_metrics_telemetry, pick
from repro.experiments.exportutil import default_out, ensure_valid
from repro.sim.telemetry import sparkline, validate_rows

#: Sparkline width: one character per telemetry window, capped here.
TIMELINE_WIDTH = 60


@dataclasses.dataclass(frozen=True)
class Case:
    """One instrumented rerun of a figure's sweep point."""

    label: str
    system: str
    op: str
    mode: str = "exclusive"
    #: (quick, full) client counts — the figure's own budgets.
    clients: Tuple[int, int] = (64, 192)
    items: Tuple[int, int] = (12, 30)
    #: kwargs for :class:`~repro.core.config.MantleConfig` (mantle only).
    config_kwargs: Optional[Dict] = None


#: fig id -> representative cases; the first case is the one exported.
CASES: Dict[str, Tuple[Case, ...]] = {
    # Fig 12 knee: baselines pin their shard servers' CPU on reads while
    # Mantle stays wire-dominated.
    "fig12": (
        Case("tectonic objstat", "tectonic", "objstat",
             clients=(64, 192), items=(12, 30)),
        Case("mantle objstat", "mantle", "objstat",
             clients=(64, 192), items=(12, 30)),
    ),
    # Fig 14 knee: shared-directory mkdir flips baselines from hardware
    # saturation to transaction conflicts.
    "fig14": (
        Case("tectonic mkdir-s", "tectonic", "mkdir", mode="shared",
             clients=(64, 160), items=(10, 24)),
        Case("mantle mkdir-s", "mantle", "mkdir", mode="shared",
             clients=(64, 160), items=(10, 24)),
    ),
    # Fig 19b knee at the top client count: leader-only objstat saturates
    # the leader IndexNode's CPU; create hits the TafDB fsync floor.
    "fig19": (
        Case("objstat leader-only", "mantle", "objstat",
             clients=(320, 640), items=(10, 20),
             config_kwargs={"enable_follower_read": False}),
        Case("create", "mantle", "create",
             clients=(320, 640), items=(10, 20)),
    ),
}


def _build_config(case: Case):
    if case.config_kwargs is None:
        return None
    from repro.core.config import MantleConfig

    return MantleConfig(**case.config_kwargs)


def _timeline(label: str, values: List[float], unit_cap: bool) -> str:
    if not values:
        return f"  {label:<24} (no samples)"
    hi = 1.0 if unit_cap else None
    peak = max(values)
    spark = sparkline(values, hi=hi, width=TIMELINE_WIDTH)
    return f"  {label:<24} |{spark}| peak {peak:.2f}"


def timeline_lines(label: str, telemetry, verdict) -> List[str]:
    """Terminal timelines for one case: CPU per host, cache hit-ratio,
    in-flight RPC level.  One sparkline column per telemetry window."""
    lines = [f"-- {label}: {verdict.describe()}",
             f"   steady window {verdict.window[0]:.0f}-"
             f"{verdict.window[1]:.0f} us, "
             f"telemetry window {telemetry.window_us:.0f} us"]
    for host in telemetry.hosts("host.cpu_busy_us"):
        series = utilization_series(telemetry.counter("host.cpu_busy_us",
                                                      host))
        lines.append(_timeline(f"cpu {host}", [v for _, v in series], True))
    hits = hit_ratio_series(telemetry)
    if hits:
        lines.append(_timeline("index cache hit-ratio",
                               [v for _, v in hits], True))
    in_flight = telemetry.find("rpc.in_flight")
    if in_flight is not None:
        series = in_flight.series()
        lines.append(_timeline("rpcs in flight",
                               [mean for _, mean, _ in series], False))
    p99s = latency_p99_series(telemetry)
    if p99s:
        lines.append(_timeline("op latency p99 us",
                               [v for _, v in p99s], False))
    return lines


def run_telemetry(fig: str, scale: str = "quick", out_base: str = "",
                  clients: Optional[int] = None, items: Optional[int] = None,
                  window_us: Optional[float] = None):
    """Instrumented rerun of ``fig``'s knee points.

    Returns ``(tables, lines, payload)`` — result tables, timeline text
    lines, and the JSON payload written for the primary case.  Raises
    ``RuntimeError`` if the exported rows fail schema validation.
    """
    if fig not in CASES:
        known = ", ".join(sorted(CASES))
        raise ValueError(f"no telemetry cases for {fig!r}; choose from "
                         f"{known}")
    out_base = out_base or default_out("telemetry", fig)
    # Short quick-scale runs get a finer window so timelines have columns.
    window = window_us or pick(scale, 1_000.0, 10_000.0)

    verdict_table = Table(
        f"{fig} saturation verdicts (steady-state window)",
        ["case", "system", "op", "Kop/s", "bottleneck", "cpu", "fsync",
         "rpc", "contention", "hot host"])
    lines: List[str] = []
    results = []
    for case in CASES[fig]:
        metrics, telemetry, verdict = mdtest_metrics_telemetry(
            case.system, case.op, mode=case.mode,
            clients=clients or pick(scale, *case.clients),
            items=items or pick(scale, *case.items),
            window_us=window, config=_build_config(case))
        results.append((case, metrics, telemetry, verdict))
        hot = (verdict.hotspots.get("cpu", "")
               if verdict.label == "cpu-bound"
               else verdict.hotspots.get("fsync", "")
               if verdict.label == "fsync-bound" else "")
        verdict_table.add_row(
            case.label, case.system, case.op,
            round(metrics.throughput_kops(), 1), verdict.label,
            *[round(verdict.scores[k], 2)
              for k in ("cpu", "fsync", "rpc", "contention")],
            hot or "-")
        lines.extend(timeline_lines(case.label, telemetry, verdict))
    verdict_table.add_note(
        "scores are steady-window fractions in [0,1]; cpu/fsync are the "
        "hottest host's busy-fraction, rpc the wire share of latency, "
        "contention the abort/retry ratio")

    # Export the primary (first) case.
    case, metrics, telemetry, verdict = results[0]
    rows = telemetry.export_rows()
    ensure_valid(validate_rows(rows), "telemetry export")
    csv_path, json_path = out_base + ".csv", out_base + ".json"
    row_count = telemetry.write_csv(csv_path)
    payload = telemetry.write_json(json_path, extra={
        "experiment": fig,
        "case": case.label,
        "scale": scale,
        "verdict": verdict.label,
        "scores": verdict.scores,
        "steady_window_us": list(verdict.window),
    })
    latency_table = latency_summary_table(
        metrics.latency, f"{case.label}: completed-op latency digest")
    latency_table.add_note(
        f"wrote {csv_path} ({row_count} rows) and {json_path}")
    return [verdict_table, latency_table], lines, payload
