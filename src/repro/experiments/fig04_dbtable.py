"""Figure 4: bottlenecks of the DBtable-based metadata service (Tectonic).

Paper: (a) the lookup step consumes 89.9 % / 91.2 % / 63.1 % of
objstat / dirstat / delete latency; (b) under full contention mkdir and
dirrename throughput collapses by 99.7 % / 99.4 %.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import Table, ratio
from repro.experiments.base import mdtest_metrics, pick, register
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP


@register("fig04", "DBtable-based service bottlenecks",
          "lookup dominates (63-91% of latency); contention collapses "
          "throughput by ~99%")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 64, 192)
    items = pick(scale, 10, 24)

    breakdown = Table(
        "Figure 4a: latency breakdown of the DBtable-based service",
        ["operation", "lookup us", "execution us", "total us",
         "lookup share %", "paper share %"])
    paper_share = {"objstat": 89.9, "dirstat": 91.2, "delete": 63.1}
    for op in ("objstat", "dirstat", "delete"):
        metrics = mdtest_metrics("tectonic", op, clients=clients, items=items)
        phases = metrics.phase_breakdown(op)
        total = metrics.mean_latency_us(op)
        breakdown.add_row(
            op,
            round(phases[PHASE_LOOKUP], 1),
            round(phases[PHASE_EXECUTION], 1),
            round(total, 1),
            round(100 * phases[PHASE_LOOKUP] / total, 1) if total else 0,
            paper_share[op])

    contention = Table(
        "Figure 4b: directory contention collapse",
        ["operation", "no conflict Kop/s", "all conflict Kop/s",
         "throughput drop %", "paper drop %", "retries under conflict"])
    paper_drop = {"mkdir": 99.7, "dirrename": 99.4}
    for op in ("mkdir", "dirrename"):
        free = mdtest_metrics("tectonic", op, mode="exclusive",
                              clients=clients, items=items)
        hot = mdtest_metrics("tectonic", op, mode="shared",
                             clients=clients, items=items)
        drop = 100 * (1 - ratio(hot.throughput_kops(), free.throughput_kops()))
        contention.add_row(
            op,
            round(free.throughput_kops(), 2),
            round(hot.throughput_kops(), 2),
            round(drop, 1),
            paper_drop[op],
            hot.retries)
    contention.add_note("collapse driven by optimistic read-modify-write "
                        "aborts on the shared parent attribute row")
    return [breakdown, contention]
