"""Figure 11: latency CDFs of metadata operations inside the applications.

Paper: in Analytics, InfiniFS's dirrename tail explodes under contention
(10.6 % of operations above 5 s, peak 52 s) while Tectonic/LocoFS mkdir and
dirrename curves nearly coincide; in Audio, InfiniFS's objstat distribution
is broad (speculation variability) and Mantle's curves are tight and fast.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.cluster import SYSTEMS, build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table
from repro.experiments.base import pick, register
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.spark import SparkAnalyticsWorkload

_PERCENTILES = (50, 90, 99, 100)


def _collect(system_name: str, workload) -> Dict[str, object]:
    system = build_system(system_name, "quick")
    try:
        return run_workload(system, workload).latency
    finally:
        system.shutdown()


@register("fig11", "Latency CDFs of application metadata operations",
          "contended dirrename has extreme tails in baselines; Mantle's "
          "distributions are tight")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 24, 64)
    tables = []

    spark_ops = ("mkdir", "dirrename")
    spark_table = Table(
        "Figure 11a/11b: Analytics op latency percentiles (us)",
        ["op", "system"] + [f"p{p}" for p in _PERCENTILES] +
        ["frac > 10x median"])
    for system_name in SYSTEMS:
        latencies = _collect(system_name, SparkAnalyticsWorkload(
            num_clients=clients, parts_per_task=2, rounds=pick(scale, 3, 6)))
        for op in spark_ops:
            recorder = latencies.get(op)
            if recorder is None:
                continue
            median = recorder.p50
            spark_table.add_row(
                op, system_name,
                *[round(recorder.p(p), 1) for p in _PERCENTILES],
                round(recorder.fraction_above(10 * median), 3))
    spark_table.add_note("paper: 10.6% of InfiniFS dirrenames exceed 5s; "
                         "the tail-mass column is the scaled analogue")
    tables.append(spark_table)

    audio_ops = ("objstat", "readdir")
    audio_table = Table(
        "Figure 11c/11d: Audio op latency percentiles (us)",
        ["op", "system"] + [f"p{p}" for p in _PERCENTILES] +
        ["spread p99/p50"])
    for system_name in SYSTEMS:
        latencies = _collect(system_name, AudioPreprocessWorkload(
            num_clients=clients, segments=pick(scale, 8, 16)))
        for op in audio_ops:
            recorder = latencies.get(op)
            if recorder is None:
                continue
            spread = recorder.p99 / recorder.p50 if recorder.p50 else 0.0
            audio_table.add_row(
                op, system_name,
                *[round(recorder.p(p), 1) for p in _PERCENTILES],
                round(spread, 2))
    audio_table.add_note("paper: InfiniFS shows the broadest objstat "
                         "distribution, Mantle the tightest/fastest")
    tables.append(audio_table)
    return tables
