"""Figure 3: characteristics of five real-world namespaces.

Paper: all five namespaces exceed 2 B entries with objects at 82.0-91.7 %
(Fig 3a); average access depths are 11.6/11.5/10.8/10.6/11.9 and for ns4
half of requests exceed depth 10 (Fig 3b).

Reproduction: the published statistics are carried as profiles; we
synthesise a scaled namespace per profile and report the realised shape
(entries, object share, depth mean/median/max and the depth CDF).
"""

from __future__ import annotations

from typing import List

from repro.bench.report import Table
from repro.experiments.base import pick, register
from repro.workloads.profiles import FIGURE3_PROFILES, depth_cdf


@register("fig03", "Namespace characteristics (ns1-ns5)",
          "billion-scale namespaces, 82-92% objects, average depth ~11")
def run(scale: str = "quick") -> List[Table]:
    entries = pick(scale, 2000, 20000)
    shape = Table(
        "Figure 3a: namespace composition (synthetic, scaled)",
        ["namespace", "paper entries (B)", "synth entries", "object %",
         "paper object %", "dirs"])
    depths = Table(
        "Figure 3b: access depth distribution",
        ["namespace", "paper avg depth", "synth avg depth", "median depth",
         "max depth", "frac deeper than 10"])
    for profile in FIGURE3_PROFILES:
        spec = profile.synthesize(scale_entries=entries)
        shape.add_row(
            profile.name,
            round(profile.total_entries / 1e9, 1),
            spec.total_entries,
            round(100 * spec.object_ratio, 1),
            round(100 * profile.object_fraction, 1),
            len(spec.directories))
        cdf = depth_cdf(spec)
        median = next(d for d, frac in cdf.items() if frac >= 0.5)
        at_10 = max((frac for d, frac in cdf.items() if d <= 10),
                    default=0.0)
        depths.add_row(
            profile.name,
            profile.mean_depth,
            round(spec.average_depth(), 1),
            median,
            spec.max_depth(),
            round(1.0 - at_10, 2))
    shape.add_note(f"synthesised at ~{entries} entries per namespace "
                   "(paper: billions); ratios/shapes preserved")
    depths.add_note("paper max depth reaches 95; clipped to ~24-30 at this "
                    "scale to keep trees connected")
    return [shape, depths]
