"""Table 1: RTTs required for one lookup, per technique.

Paper: DBtable/metadata caching approaches need ``pathlen`` RTTs, parallel
resolving between 1 and ``pathlen`` (7.4 in practice at 512 threads for a
10-level path), tiering and Mantle a single RTT.  We *measure* the RPC
rounds a depth-10 objstat lookup actually performs in each system.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics, pick, register

#: The paper's analytic RTT count for a depth-`n` lookup.
ANALYTIC = {
    "tectonic": "pathlen",
    "infinifs": "[1, pathlen] (parallel rounds)",
    "locofs": "single (dir server)",
    "mantle": "single",
}


@register("table1", "RTT rounds per lookup",
          "pathlen RTTs for DBtable, single RTT for tiering and Mantle")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 32, 96)
    items = pick(scale, 10, 24)
    depth = 10
    table = Table(
        "Table 1: measured RPC rounds for a depth-10 objstat",
        ["system", "mean RPCs (whole op)", "lookup-phase share of latency",
         "paper analytic"])
    for system_name in SYSTEMS:
        metrics = mdtest_metrics(system_name, "objstat", depth=depth,
                                 clients=clients, items=items)
        lookup = metrics.phase_breakdown("objstat")["lookup"]
        total = metrics.mean_latency_us("objstat")
        table.add_row(
            system_name,
            round(metrics.mean_rpcs("objstat"), 1),
            round(lookup / total, 2) if total else 0,
            ANALYTIC[system_name])
    table.add_note("InfiniFS issues its per-level reads in ONE parallel "
                   "round, so rounds != RPC count; Mantle/LocoFS pay one "
                   "resolution RPC plus the execution-phase DB read")
    return [table]
