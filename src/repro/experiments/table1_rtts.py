"""Table 1: RTTs required for one lookup, per technique.

Paper: DBtable/metadata caching approaches need ``pathlen`` RTTs, parallel
resolving between 1 and ``pathlen`` (7.4 in practice at 512 threads for a
10-level path), tiering and Mantle a single RTT.  We *measure* the RPC
rounds a depth-10 objstat lookup actually performs in each system.

Since PR 2 the measurement comes from the span tracer: each run is traced
and the table reads mean RPCs (``rpc``-category spans under each op root)
and the lookup-phase latency share from :func:`repro.sim.trace.aggregate_ops`
instead of the ``OpContext`` counters — ``mantle-exp trace table1``
cross-checks the two derivations agree within 1%.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_traced, pick, register
from repro.sim.stats import PHASE_LOOKUP
from repro.sim.trace import aggregate_ops

#: The paper's analytic RTT count for a depth-`n` lookup.
ANALYTIC = {
    "tectonic": "pathlen",
    "infinifs": "[1, pathlen] (parallel rounds)",
    "locofs": "single (dir server)",
    "mantle": "single",
}


def run_traced(scale: str = "quick") -> Tuple[List[Table], List[Dict]]:
    """Run every system traced; returns (tables, per-system artifacts)."""
    clients = pick(scale, 32, 96)
    items = pick(scale, 10, 24)
    depth = 10
    table = Table(
        "Table 1: measured RPC rounds for a depth-10 objstat (span-derived)",
        ["system", "mean RPCs (whole op)", "lookup-phase share of latency",
         "paper analytic"])
    artifacts: List[Dict] = []
    for system_name in SYSTEMS:
        metrics, tracer = mdtest_metrics_traced(
            system_name, "objstat", depth=depth, clients=clients, items=items)
        agg = aggregate_ops(tracer.spans).get("objstat")
        if agg is None or not agg.count:
            raise RuntimeError(f"no successful objstat spans for {system_name}")
        lookup = agg.mean_phase_us(PHASE_LOOKUP)
        total = agg.mean_latency_us
        table.add_row(
            system_name,
            round(agg.mean_rpcs, 1),
            round(lookup / total, 2) if total else 0,
            ANALYTIC[system_name])
        artifacts.append({
            "label": f"objstat/{system_name}",
            "op": "objstat",
            "metrics": metrics,
            "tracer": tracer,
        })
    table.add_note("InfiniFS issues its per-level reads in ONE parallel "
                   "round, so rounds != RPC count; Mantle/LocoFS pay one "
                   "resolution RPC plus the execution-phase DB read")
    return [table], artifacts


@register("table1", "RTT rounds per lookup",
          "pathlen RTTs for DBtable, single RTT for tiering and Mantle")
def run(scale: str = "quick") -> List[Table]:
    tables, _artifacts = run_traced(scale)
    return tables
