"""Figure 20: impact of adding metadata caching (AM-Cache).

Paper: caching barely helps the Analytics workload (dominated by directory
modifications).  For Audio it cuts InfiniFS from 115.1 s to 63.0 s, while
Mantle only goes from 68.9 s to 63.0 s — its single-RPC lookups leave
little room for client caching.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import pick, register
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.spark import SparkAnalyticsWorkload

_CACHE_CAPACITY = 4096


def _completion_ms(system_name: str, cached: bool, workload) -> float:
    if system_name == "mantle":
        config = MantleConfig(
            client_cache_capacity=_CACHE_CAPACITY if cached else 0)
        system = build_system("mantle", "quick", config=config)
    else:
        system = build_system(
            "infinifs", "quick",
            am_cache_capacity=_CACHE_CAPACITY if cached else 0)
    try:
        return run_workload(system, workload).duration_us / 1000.0
    finally:
        system.shutdown()


@register("fig20", "Impact of adding metadata caching",
          "caching transforms InfiniFS on read-heavy Audio but yields "
          "little for Mantle (single-RPC lookups) or for Analytics")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 24, 64)
    table = Table(
        "Figure 20: completion time with/without metadata caching (ms)",
        ["workload", "system", "no cache", "with cache", "improvement %"])
    workloads = {
        "analytics": lambda: SparkAnalyticsWorkload(
            num_clients=clients, parts_per_task=2, rounds=pick(scale, 3, 6)),
        "audio": lambda: AudioPreprocessWorkload(
            num_clients=clients, segments=pick(scale, 10, 20), depth=11),
    }
    for workload_name, factory in workloads.items():
        for system_name in ("infinifs", "mantle"):
            plain = _completion_ms(system_name, False, factory())
            cached = _completion_ms(system_name, True, factory())
            table.add_row(
                workload_name, system_name,
                round(plain, 2), round(cached, 2),
                round(100 * (1 - ratio(cached, plain)), 1))
    table.add_note("paper (Audio): InfiniFS 115.1s -> 63.0s, Mantle "
                   "68.9s -> 63.0s; Analytics sees only modest gains")
    return [table]
