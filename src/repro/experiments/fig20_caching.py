"""Figure 20: impact of adding metadata caching (AM-Cache).

Paper: caching barely helps the Analytics workload (dominated by directory
modifications).  For Audio it cuts InfiniFS from 115.1 s to 63.0 s, while
Mantle only goes from 68.9 s to 63.0 s — its single-RPC lookups leave
little room for client caching.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import pick, register
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.spark import SparkAnalyticsWorkload

_CACHE_CAPACITY = 4096


def _client_cache_hit_rate(system_name: str, system) -> float:
    """Aggregate hit rate across the proxies' client/AM caches."""
    hits = 0
    misses = 0
    for entry in system.proxies:
        cache = entry.client_cache if system_name == "mantle" else entry[2]
        if cache is not None:
            hits += cache.hits
            misses += cache.misses
    seen = hits + misses
    return hits / seen if seen else 0.0


def _completion_ms(system_name: str, cached: bool, workload):
    if system_name == "mantle":
        config = MantleConfig(
            client_cache_capacity=_CACHE_CAPACITY if cached else 0)
        system = build_system("mantle", "quick", config=config)
    else:
        system = build_system(
            "infinifs", "quick",
            am_cache_capacity=_CACHE_CAPACITY if cached else 0)
    try:
        duration_ms = run_workload(system, workload).duration_us / 1000.0
        return duration_ms, _client_cache_hit_rate(system_name, system)
    finally:
        system.shutdown()


@register("fig20", "Impact of adding metadata caching",
          "caching transforms InfiniFS on read-heavy Audio but yields "
          "little for Mantle (single-RPC lookups) or for Analytics")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 24, 64)
    table = Table(
        "Figure 20: completion time with/without metadata caching (ms)",
        ["workload", "system", "no cache", "with cache", "improvement %",
         "cache hit %"])
    workloads = {
        "analytics": lambda: SparkAnalyticsWorkload(
            num_clients=clients, parts_per_task=2, rounds=pick(scale, 3, 6)),
        "audio": lambda: AudioPreprocessWorkload(
            num_clients=clients, segments=pick(scale, 10, 20), depth=11),
    }
    for workload_name, factory in workloads.items():
        for system_name in ("infinifs", "mantle"):
            plain, _no_cache_hr = _completion_ms(
                system_name, False, factory())
            cached, hit_rate = _completion_ms(system_name, True, factory())
            table.add_row(
                workload_name, system_name,
                round(plain, 2), round(cached, 2),
                round(100 * (1 - ratio(cached, plain)), 1),
                round(100 * hit_rate, 1))
    table.add_note("paper (Audio): InfiniFS 115.1s -> 63.0s, Mantle "
                   "68.9s -> 63.0s; Analytics sees only modest gains")
    table.add_note("cache hit % aggregates the proxies' client/AM LRU "
                   "counters for the cached run")
    return [table]
