"""Extension (§7.2 "Optimization potential"): the RDMA RPC proof of concept.

Paper: "Mantle's scalability is currently constrained by the CPU resource
of IndexNode... a proof-of-concept implementation demonstrates that
adopting RDMA in the RPC framework can boost per-node path resolution
throughput from 500K ops/s to 1M ops/s."

RDMA removes most of the per-RPC CPU handling (kernel bypass, zero-copy);
in the cost model that is ``index_rpc_overhead_us``.  We sweep the leader's
lookup throughput at saturation with the TCP-like default versus an
RDMA-like overhead, expecting roughly the paper's 2x.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import pick, register
from repro.sim.host import CostModel
from repro.workloads.mdtest import MdtestWorkload


def _throughput(costs: CostModel, clients: int, items: int) -> float:
    config = MantleConfig(enable_follower_read=False, costs=costs)
    system = build_system("mantle", "quick", config=config, costs=costs)
    try:
        workload = MdtestWorkload("objstat", depth=10, items=items,
                                  num_clients=clients)
        return run_workload(system, workload).throughput_kops()
    finally:
        system.shutdown()


@register("ext-rdma", "RDMA RPC proof of concept (extension)",
          "RDMA halves IndexNode CPU per lookup, ~doubling per-node "
          "resolution throughput (500K -> 1M ops/s in the paper's PoC)")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 160, 384)
    items = pick(scale, 10, 20)
    baseline = CostModel()
    # Kernel-bypass RPC: most of the request-handling CPU disappears and
    # the wire latency drops.
    rdma = baseline.copy(index_rpc_overhead_us=4.0, net_one_way_us=15.0)
    table = Table(
        "Extension: leader-only lookup throughput, TCP RPC vs RDMA RPC",
        ["rpc framework", "rpc overhead us", "one-way us",
         "lookup throughput Kop/s", "speedup"])
    tcp_kops = _throughput(baseline, clients, items)
    rdma_kops = _throughput(rdma, clients, items)
    table.add_row("tcp", baseline.index_rpc_overhead_us,
                  baseline.net_one_way_us, round(tcp_kops, 1), 1.0)
    table.add_row("rdma", rdma.index_rpc_overhead_us, rdma.net_one_way_us,
                  round(rdma_kops, 1), round(ratio(rdma_kops, tcp_kops), 2))
    table.add_note("paper PoC: 500K -> 1M ops/s per node (2.0x)")
    return [table]
