"""Experiment registry and shared measurement helpers."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table
from repro.sim.stats import MetricSet
from repro.workloads.mdtest import MdtestWorkload

#: Per-experiment client/item budgets by scale.
SCALES = ("quick", "full")


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One reproduced exhibit (figure or table)."""

    id: str
    title: str
    paper_claim: str
    runner: Callable[[str], List[Table]]

    def run(self, scale: str = "quick") -> List[Table]:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}")
        return self.runner(scale)


REGISTRY: Dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_claim: str):
    """Decorator registering a ``run(scale) -> List[Table]`` function."""
    def decorate(func):
        if exp_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        REGISTRY[exp_id] = Experiment(exp_id, title, paper_claim, func)
        return func
    return decorate


def get_experiment(exp_id: str) -> Experiment:
    if exp_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")
    return REGISTRY[exp_id]


def list_experiments() -> List[Experiment]:
    return [REGISTRY[key] for key in sorted(REGISTRY)]


def pick(scale: str, quick, full):
    """Select a parameter by scale."""
    return quick if scale == "quick" else full


def mdtest_metrics(system_name: str, op: str, mode: str = "exclusive",
                   clients: int = 32, items: int = 10, depth: int = 10,
                   scale: str = "quick", cluster_scale: Optional[str] = None,
                   **build_overrides) -> MetricSet:
    """Build a system, run one mdtest workload, tear down, return metrics."""
    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        return run_workload(system, workload)
    finally:
        system.shutdown()


def app_metrics(system_name: str, workload, data_access: bool = False,
                cluster_scale: str = "quick",
                **build_overrides) -> MetricSet:
    """Run an application workload (Spark/Audio) on one system."""
    system = build_system(system_name, cluster_scale, **build_overrides)
    try:
        system.data_access_enabled = data_access
        return run_workload(system, workload)
    finally:
        system.shutdown()
