"""Experiment registry and shared measurement helpers."""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table
from repro.sim.stats import MetricSet
from repro.workloads.mdtest import MdtestWorkload

#: Per-experiment client/item budgets by scale.
SCALES = ("quick", "full")


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One reproduced exhibit (figure or table)."""

    id: str
    title: str
    paper_claim: str
    runner: Callable[..., List[Table]]
    #: Whether ``runner`` takes a ``jobs`` keyword (sweep-style experiments
    #: that can fan per-point simulators across worker processes).
    accepts_jobs: bool = False
    #: Whether ``runner`` takes a ``check_profile`` keyword (breakdown
    #: experiments that can cross-check their columns against the cost
    #: profiler).
    accepts_check_profile: bool = False

    def run(self, scale: str = "quick", jobs: int = 1,
            check_profile: bool = False) -> List[Table]:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}")
        if check_profile and not self.accepts_check_profile:
            raise ValueError(
                f"{self.id} does not support --check-profile; supported: "
                + ", ".join(e.id for e in list_experiments()
                            if e.accepts_check_profile))
        kwargs = {}
        if self.accepts_jobs:
            kwargs["jobs"] = jobs
        if self.accepts_check_profile:
            kwargs["check_profile"] = check_profile
        return self.runner(scale, **kwargs)


REGISTRY: Dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_claim: str):
    """Decorator registering a ``run(scale) -> List[Table]`` function.

    Runners may additionally accept ``jobs`` and/or ``check_profile``
    keywords; the registry detects them so ``Experiment.run`` only forwards
    what each runner supports.
    """
    def decorate(func):
        if exp_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        params = inspect.signature(func).parameters
        REGISTRY[exp_id] = Experiment(
            exp_id, title, paper_claim, func,
            accepts_jobs="jobs" in params,
            accepts_check_profile="check_profile" in params)
        return func
    return decorate


def _apply_point(task):
    """Pool worker for :func:`map_points` (module level for pickling)."""
    func, point = task
    return func(point)


def map_points(func: Callable, points: Sequence, jobs: int = 1) -> List:
    """Evaluate ``func`` over independent sweep points, preserving order.

    With ``jobs > 1`` the points run across a process pool — each sweep
    point owns its own :class:`~repro.sim.core.Simulator`, so results are
    identical to the serial path; only wall-clock changes.  ``func`` must be
    a module-level callable and its result picklable.
    """
    points = list(points)
    if jobs <= 1 or len(points) <= 1:
        return [func(point) for point in points]
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
    with ctx.Pool(min(jobs, len(points))) as pool:
        return pool.map(_apply_point, [(func, point) for point in points])


def get_experiment(exp_id: str) -> Experiment:
    if exp_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")
    return REGISTRY[exp_id]


def list_experiments() -> List[Experiment]:
    return [REGISTRY[key] for key in sorted(REGISTRY)]


def pick(scale: str, quick, full):
    """Select a parameter by scale."""
    return quick if scale == "quick" else full


def mdtest_metrics(system_name: str, op: str, mode: str = "exclusive",
                   clients: int = 32, items: int = 10, depth: int = 10,
                   scale: str = "quick", cluster_scale: Optional[str] = None,
                   **build_overrides) -> MetricSet:
    """Build a system, run one mdtest workload, tear down, return metrics."""
    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        return run_workload(system, workload)
    finally:
        system.shutdown()


def mdtest_metrics_traced(system_name: str, op: str, mode: str = "exclusive",
                          clients: int = 32, items: int = 10, depth: int = 10,
                          cluster_scale: Optional[str] = None,
                          **build_overrides):
    """Like :func:`mdtest_metrics`, but with span tracing on.

    Attaches a fresh :class:`~repro.sim.trace.Tracer` to the system's
    simulator before the workload runs and returns ``(metrics, tracer)``.
    The tracer never creates simulator events, so the metrics are identical
    to an untraced run — the fig15/table1 span-derived tables rely on that.
    """
    from repro.sim.trace import Tracer

    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    tracer = Tracer()
    tracer.bind(system.sim)
    system.sim.tracer = tracer
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        return run_workload(system, workload), tracer
    finally:
        system.shutdown()


def mdtest_metrics_profiled(system_name: str, op: str,
                            mode: str = "exclusive", clients: int = 32,
                            items: int = 10, depth: int = 10,
                            cluster_scale: Optional[str] = None,
                            config=None, **build_overrides):
    """Like :func:`mdtest_metrics`, but instrumented for cost profiling.

    Attaches both a bound :class:`~repro.sim.trace.Tracer` (span stacks +
    cost charges) and a :class:`~repro.sim.telemetry.Telemetry` (the busy
    counters the profiler's CPU attribution must reconcile against) and
    returns ``(metrics, tracer, telemetry)``.  Both are pure bookkeeping,
    so the metrics stay bit-identical to an uninstrumented run.
    """
    from repro.sim.telemetry import Telemetry
    from repro.sim.trace import Tracer

    if config is not None:
        build_overrides["config"] = config
    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    tracer = Tracer()
    tracer.bind(system.sim)
    system.sim.tracer = tracer
    telemetry = Telemetry()
    system.sim.telemetry = telemetry
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        metrics = run_workload(system, workload)
        return metrics, tracer, telemetry
    finally:
        system.shutdown()


def mdtest_metrics_telemetry(system_name: str, op: str,
                             mode: str = "exclusive", clients: int = 32,
                             items: int = 10, depth: int = 10,
                             cluster_scale: Optional[str] = None,
                             window_us: Optional[float] = None,
                             config=None, **build_overrides):
    """Like :func:`mdtest_metrics`, but with windowed telemetry attached.

    Attaches a fresh :class:`~repro.sim.telemetry.Telemetry` to the
    system's simulator, runs the workload and classifies the run with the
    saturation analyzer *before* teardown (the verdict needs the live
    system's cost model and host set).  Returns ``(metrics, telemetry,
    verdict)``.  Telemetry is pure bookkeeping, so the metrics are
    bit-identical to an uninstrumented run.
    """
    from repro.bench.analyze import classify_run
    from repro.sim.telemetry import Telemetry

    if config is not None:
        build_overrides["config"] = config
    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    telemetry = Telemetry(window_us) if window_us else Telemetry()
    system.sim.telemetry = telemetry
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        metrics = run_workload(system, workload)
        verdict = classify_run(system, metrics, telemetry)
        return metrics, telemetry, verdict
    finally:
        system.shutdown()


def mdtest_metrics_triaged(system_name: str, op: str,
                           mode: str = "exclusive", clients: int = 32,
                           items: int = 10, depth: int = 10,
                           cluster_scale: Optional[str] = None,
                           window_us: Optional[float] = None,
                           config=None, **build_overrides):
    """Like :func:`mdtest_metrics_profiled`, but tail-instrumented.

    Attaches a :class:`~repro.sim.trace.Tracer` carrying a
    :class:`~repro.sim.trace.TailKeeper` (slow/errored op trees survive
    the ring) plus a windowed :class:`~repro.sim.telemetry.Telemetry`
    (per-op latency digests recorded by ``perform``), runs the workload,
    and phase-segments the run *before* teardown (the verdicts need the
    live system's cost model).  Returns ``(metrics, tracer, telemetry,
    phases)``.  All instrumentation is pure bookkeeping — the metrics
    stay bit-identical to an uninstrumented run.
    """
    from repro.bench.analyze import segment_run
    from repro.sim.telemetry import Telemetry
    from repro.sim.trace import TailKeeper, Tracer

    if config is not None:
        build_overrides["config"] = config
    system = build_system(system_name, cluster_scale or "quick",
                          **build_overrides)
    tracer = Tracer(keeper=TailKeeper())
    tracer.bind(system.sim)
    system.sim.tracer = tracer
    telemetry = Telemetry(window_us) if window_us else Telemetry()
    system.sim.telemetry = telemetry
    try:
        workload = MdtestWorkload(op, mode=mode, depth=depth, items=items,
                                  num_clients=clients)
        metrics = run_workload(system, workload)
        phases = segment_run(system, metrics, telemetry)
        return metrics, tracer, telemetry, phases
    finally:
        system.shutdown()


def app_metrics(system_name: str, workload, data_access: bool = False,
                cluster_scale: str = "quick",
                **build_overrides) -> MetricSet:
    """Run an application workload (Spark/Audio) on one system."""
    system = build_system(system_name, cluster_scale, **build_overrides)
    try:
        system.data_access_enabled = data_access
        return run_workload(system, workload)
    finally:
        system.shutdown()
