"""Figure 16: effects of individual optimisations (ablation).

Paper: starting from Mantle-base, '+pathcache' roughly doubles dirstat
throughput ('+follower read' improves it further); '+raftlogbatch' lifts
mkdir-e by amortising Raft commits; '+delta record' removes the
dirrename-s conflict storms.

The dirstat-e column additionally reports *what gated latency* at each
step (the top critical-path center, :mod:`repro.sim.critpath`) — the
ablation's mechanism made visible: each optimisation pays off by
removing the previous step's gate.  The final step's gate is
cross-checked with the what-if engine: predict a 2x speedup of that
center from slack, rerun with the override applied, and report both.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import mdtest_metrics_profiled, pick, register
from repro.workloads.mdtest import MdtestWorkload

#: (label, cumulative config overrides) in the paper's enabling order.
STEPS = (
    ("mantle-base", {}),
    ("+pathcache", {"enable_path_cache": True}),
    ("+raftlogbatch", {"enable_raft_batching": True}),
    ("+delta record", {"enable_delta_records": True}),
    ("+follower read", {"enable_follower_read": True}),
)

WORKLOADS = (("dirstat", "exclusive"), ("mkdir", "exclusive"),
             ("dirrename", "shared"))


def _config_for(step_index: int) -> MantleConfig:
    config = MantleConfig.base()
    merged = {}
    for _label, overrides in STEPS[:step_index + 1]:
        merged.update(overrides)
    return config.copy(**merged)


def _top_gate(crit):
    """Render the top gating center as ``frame kind@host (share)``."""
    ranked = crit.top_gating(1)
    if not ranked:
        return "-", None
    (host, frame, kind), _us = ranked[0]
    share = crit.shares()[(host, frame, kind)]
    where = f"@{host}" if host else ""
    from repro.sim.critpath import component_of

    return (f"{frame} {kind}{where} ({share:.0%})",
            component_of(host, frame, kind))


def _whatif_note(crit, component, config, clients, items):
    """Cross-check the final step's gate: predict 2x, rerun, compare."""
    from repro.experiments.base import mdtest_metrics
    from repro.sim.critpath import predict_speedup
    from repro.sim.host import CostOverrides

    overrides = CostOverrides.of(**{component: 2.0})
    prediction = predict_speedup(crit, overrides)
    measured = mdtest_metrics(
        "mantle", "dirstat", mode="exclusive", clients=clients,
        items=items, config=config.copy(overrides=overrides))
    baseline = crit.mean_latency_us
    measured_us = measured.mean_latency_us("dirstat")
    predicted_frac = prediction.predicted_latency_delta_frac
    measured_frac = 1.0 - measured_us / baseline if baseline else 0.0
    return (f"what-if cross-check on the final gate: {component}=2x "
            f"predicts -{predicted_frac:.1%} dirstat-e latency from "
            f"slack; measured rerun -{measured_frac:.1%}")


@register("fig16", "Effects of individual optimisations",
          "pathcache doubles dirstat; raft batching lifts mkdir-e; delta "
          "records rescue dirrename-s; follower read adds lookup headroom")
def run(scale: str = "quick") -> List[Table]:
    # Saturation matters here: the path cache and follower reads pay off by
    # multiplying the IndexNode's CPU capacity, which only shows once the
    # leader is CPU-bound (the paper drives 512 mdtest threads).
    clients = pick(scale, 112, 256)
    items = pick(scale, 10, 20)
    table = Table(
        "Figure 16: throughput normalised to Mantle-base",
        ["configuration"] + [f"{op}{'-s' if mode == 'shared' else '-e'}"
                             for op, mode in WORKLOADS]
        + ["dirstat-e gated by"])
    raw = Table(
        "Figure 16 (raw): throughput (Kop/s)",
        ["configuration"] + [f"{op}{'-s' if mode == 'shared' else '-e'}"
                             for op, mode in WORKLOADS])
    baseline = {}
    final_crit = None
    final_component = None
    for step_index, (label, _overrides) in enumerate(STEPS):
        row_norm = [label]
        row_raw = [label]
        gate_label = "-"
        for op, mode in WORKLOADS:
            config = _config_for(step_index)
            if op == "dirstat":
                # Instrumented run: tracing is pure bookkeeping, so the
                # throughput is bit-identical — one run feeds both the
                # column and the gating label.
                from repro.sim.critpath import critpath_from_tracer

                metrics, tracer, _telemetry = mdtest_metrics_profiled(
                    "mantle", op, mode=mode, depth=10, items=items,
                    clients=clients, config=config)
                crit = critpath_from_tracer(tracer, name=label)
                gate_label, component = _top_gate(crit)
                if step_index == len(STEPS) - 1:
                    final_crit = crit
                    final_component = component
            else:
                system = build_system("mantle", "quick", config=config)
                try:
                    workload = MdtestWorkload(op, mode=mode, depth=10,
                                              items=items,
                                              num_clients=clients)
                    metrics = run_workload(system, workload)
                finally:
                    system.shutdown()
            kops = metrics.throughput_kops()
            key = (op, mode)
            if step_index == 0:
                baseline[key] = kops
            row_norm.append(round(ratio(kops, baseline[key]), 2))
            row_raw.append(round(kops, 2))
        table.add_row(*(row_norm + [gate_label]))
        raw.add_row(*row_raw)
    table.add_note("each row enables one more optimisation, cumulatively, "
                   "in the paper's order")
    table.add_note("gated by = top critical-path center of the dirstat-e "
                   "run (share of end-to-end latency it gates); each "
                   "optimisation removes the previous step's gate")
    if final_crit is not None and final_component is not None:
        table.add_note(_whatif_note(final_crit, final_component,
                                    _config_for(len(STEPS) - 1),
                                    clients, items))
    return [table, raw]
