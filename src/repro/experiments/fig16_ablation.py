"""Figure 16: effects of individual optimisations (ablation).

Paper: starting from Mantle-base, '+pathcache' roughly doubles dirstat
throughput ('+follower read' improves it further); '+raftlogbatch' lifts
mkdir-e by amortising Raft commits; '+delta record' removes the
dirrename-s conflict storms.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.bench.report import Table, ratio
from repro.core.config import MantleConfig
from repro.experiments.base import pick, register
from repro.workloads.mdtest import MdtestWorkload

#: (label, cumulative config overrides) in the paper's enabling order.
STEPS = (
    ("mantle-base", {}),
    ("+pathcache", {"enable_path_cache": True}),
    ("+raftlogbatch", {"enable_raft_batching": True}),
    ("+delta record", {"enable_delta_records": True}),
    ("+follower read", {"enable_follower_read": True}),
)

WORKLOADS = (("dirstat", "exclusive"), ("mkdir", "exclusive"),
             ("dirrename", "shared"))


def _config_for(step_index: int) -> MantleConfig:
    config = MantleConfig.base()
    merged = {}
    for _label, overrides in STEPS[:step_index + 1]:
        merged.update(overrides)
    return config.copy(**merged)


@register("fig16", "Effects of individual optimisations",
          "pathcache doubles dirstat; raft batching lifts mkdir-e; delta "
          "records rescue dirrename-s; follower read adds lookup headroom")
def run(scale: str = "quick") -> List[Table]:
    # Saturation matters here: the path cache and follower reads pay off by
    # multiplying the IndexNode's CPU capacity, which only shows once the
    # leader is CPU-bound (the paper drives 512 mdtest threads).
    clients = pick(scale, 112, 256)
    items = pick(scale, 10, 20)
    table = Table(
        "Figure 16: throughput normalised to Mantle-base",
        ["configuration"] + [f"{op}{'-s' if mode == 'shared' else '-e'}"
                             for op, mode in WORKLOADS])
    raw = Table(
        "Figure 16 (raw): throughput (Kop/s)",
        ["configuration"] + [f"{op}{'-s' if mode == 'shared' else '-e'}"
                             for op, mode in WORKLOADS])
    baseline = {}
    for step_index, (label, _overrides) in enumerate(STEPS):
        row_norm = [label]
        row_raw = [label]
        for op, mode in WORKLOADS:
            system = build_system("mantle", "quick",
                                  config=_config_for(step_index))
            try:
                workload = MdtestWorkload(op, mode=mode, depth=10,
                                          items=items, num_clients=clients)
                metrics = run_workload(system, workload)
            finally:
                system.shutdown()
            kops = metrics.throughput_kops()
            key = (op, mode)
            if step_index == 0:
                baseline[key] = kops
            row_norm.append(round(ratio(kops, baseline[key]), 2))
            row_raw.append(round(kops, 2))
        table.add_row(*row_norm)
        raw.add_row(*row_raw)
    table.add_note("each row enables one more optimisation, cumulatively, "
                   "in the paper's order")
    return [table, raw]
