"""``mantle-exp blame`` — interference blame: who delayed whom.

Reruns a figure's knee point (or a bare mdtest op) instrumented, folds
every victim op's critical-path **queue** segments into a blame matrix
keyed (victim op/tenant, culprit op/tenant, resource, host) using the
occupant tags the contended resources stamp (``Span.queue_by``), then
per run

* prints the top culprits — which op type (and tenant) the queueing on
  victims' paths traces back to, per resource,
* prints the tenant-by-tenant interference rollup (multitenant runs),
* renders one exemplar victim path with each queue segment naming its
  culprits, and
* writes a schema-validated ``blame_<target>[_<system>].json``.

The matrix conserves **exactly** against the critical path's queue-kind
segments (every blamed microsecond is a gated queue microsecond and vice
versa) — checked here with the same tolerance ``critpath`` uses for its
telescoping identity.

The special target ``multitenant`` runs the two-namespace interference
scenario instead of a figure point: a "storm" namespace hammering
shared-directory mkdirs next to a light "victim" namespace doing
objstats, over one shared TafDB and a co-located IndexNode pool — the
§7.2 noisy-neighbour setup, now with the victim's queueing attributed to
the tenant that caused it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_profiled, pick
from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)
from repro.experiments.critpathcmd import CONSERVATION_TOLERANCE
from repro.experiments.profilecmd import Case, resolve_case
from repro.ops import make_op
from repro.sim.critpath import (
    BlameMatrix,
    CritPath,
    build_blame,
    critpath_from_tracer,
    render_blame_exemplar,
    to_blame_payload,
    validate_blame,
)


def _check_conservation(crit: CritPath, blame: BlameMatrix,
                        who: str) -> None:
    """Gate on both identities: path segments telescope to latency, and
    blamed microseconds cover the queue segments exactly."""
    err = crit.conservation_error()
    if err > CONSERVATION_TOLERANCE:
        raise RuntimeError(
            f"{who}: critical-path segments cover {1 - err:.6%} of "
            f"end-to-end latency (must telescope exactly)")
    err = blame.conservation_error()
    if err > CONSERVATION_TOLERANCE:
        raise RuntimeError(
            f"{who}: blame matrix covers {1 - err:.6%} of gated queue "
            f"time (occupant tags must decompose queue_res exactly)")


def blame_point(system: str, target: str, case: Case, scale: str,
                clients: Optional[int] = None,
                items: Optional[int] = None,
                out_base: str = "") -> Dict:
    """Run one system's knee point instrumented; fold + export blame."""
    _metrics, tracer, telemetry = mdtest_metrics_profiled(
        system, case.op, mode=case.mode,
        clients=clients or pick(scale, *case.clients),
        items=items or pick(scale, *case.items))
    crit = critpath_from_tracer(tracer, name=f"{system} {case.op}")
    blame = build_blame(crit)
    _check_conservation(crit, blame, system)
    base = out_base or default_out("blame", target)
    path = f"{base}_{system}.json"
    payload = to_blame_payload(blame, crit)
    ensure_valid(validate_blame(payload), path)
    write_json_payload(path, payload)
    return {
        "system": system,
        "crit": crit,
        "blame": blame,
        "telemetry": telemetry,
        "path": path,
        "payload": payload,
        "exemplar_root": None,
    }


# ---------------------------------------------------------------------------
# The multitenant interference scenario.
# ---------------------------------------------------------------------------

#: (storm clients, victim clients) per scale — the storm floods shared-
#: directory mkdirs while the victim reads; quick stays CI-sized.
_MT_STORM_CLIENTS = (48, 96)
_MT_VICTIM_CLIENTS = (6, 12)
_MT_ITEMS = (6, 10)
_MT_VICTIM_OPS = (24, 48)


def run_multitenant(scale: str = "quick", clients: Optional[int] = None,
                    items: Optional[int] = None, out_base: str = "") -> Dict:
    """Two namespaces, one shared TafDB, a co-located IndexNode pool.

    ``storm`` runs the fig14-style shared-directory mkdir conflict storm;
    ``victim`` does light objstats.  Both tenants' ops carry their
    namespace as the tenant label, so the blame matrix shows how much of
    the victim's queueing the storm caused — the number §7.2's leader
    rebalancing exists to shrink.
    """
    from repro.core.config import MantleConfig
    from repro.core.multitenant import MantleDeployment
    from repro.sim.stats import OpContext
    from repro.sim.telemetry import Telemetry
    from repro.sim.trace import Tracer

    storm_clients = clients or pick(scale, *_MT_STORM_CLIENTS)
    victim_clients = pick(scale, *_MT_VICTIM_CLIENTS)
    storm_items = items or pick(scale, *_MT_ITEMS)
    victim_ops = pick(scale, *_MT_VICTIM_OPS)

    config = MantleConfig(num_db_servers=3, num_db_shards=12, db_cores=4,
                          num_proxies=2, proxy_cores=16, index_cores=4)
    deployment = MantleDeployment(config, shared_index_pool=3)
    try:
        storm = deployment.create_namespace("storm", colocate=True)
        victim = deployment.create_namespace("victim", colocate=True)
        storm.bulk_mkdir("/hot")
        victim.bulk_mkdir("/w")
        victim.bulk_create("/w/obj")

        sim = deployment.sim
        sim.tracer = Tracer()
        sim.tracer.bind(sim)
        sim.telemetry = Telemetry()
        latencies: List[float] = []

        def storm_client(i: int):
            for k in range(storm_items):
                ctx = OpContext("mkdir")
                yield from storm.perform(
                    make_op("mkdir", f"/hot/c{i}k{k}"), ctx=ctx)

        def victim_client():
            for _ in range(victim_ops):
                ctx = OpContext("objstat")
                yield from victim.perform(
                    make_op("objstat", "/w/obj"), ctx=ctx)
                latencies.append(ctx.latency)

        procs = [sim.process(storm_client(i))
                 for i in range(storm_clients)]
        procs += [sim.process(victim_client())
                  for _ in range(victim_clients)]
        sim.run_until(sim.all_of(procs))
        sim.telemetry.finalize(sim.now)
        tracer, telemetry = sim.tracer, sim.telemetry
    finally:
        deployment.shutdown()

    crit = critpath_from_tracer(tracer, name="multitenant storm+victim")
    blame = build_blame(crit)
    _check_conservation(crit, blame, "multitenant")
    path = (out_base or default_out("blame", "multitenant")) + ".json"
    payload = to_blame_payload(blame, crit)
    ensure_valid(validate_blame(payload), path)
    write_json_payload(path, payload)
    victim_mean = sum(latencies) / len(latencies) if latencies else 0.0
    return {
        "system": "mantle",
        "crit": crit,
        "blame": blame,
        "telemetry": telemetry,
        "path": path,
        "payload": payload,
        "victim_mean_us": victim_mean,
        "exemplar_root": _victim_exemplar(crit),
    }


def _victim_exemplar(crit: CritPath):
    """The victim-tenant op closest to the victim ops' own mean latency
    (``CritPath.exemplar_root`` picks across all tenants)."""
    victims = [root for root, _us in crit.root_paths
               if root.attrs and root.attrs.get("tenant") == "victim"]
    if not victims:
        return None
    mean = sum(r.duration_us for r in victims) / len(victims)
    return min(victims, key=lambda r: (abs(r.duration_us - mean),
                                       r.span_id))


# ---------------------------------------------------------------------------
# Tables + entry point.
# ---------------------------------------------------------------------------

def _tenant_text(tenant: Optional[str]) -> str:
    return tenant if tenant is not None else "-"


def culprit_table(artifact: Dict, top: int) -> Table:
    blame: BlameMatrix = artifact["blame"]
    ops = max(blame.ops, 1)
    table = Table(
        f"{blame.name}: top culprits ({blame.ops} ops, "
        f"{blame.total_queue_us / ops:.1f} us/op queued = "
        f"{blame.queue_share:.1%} of latency)",
        ["culprit op", "tenant", "resource", "us/op", "queue share"])
    total = max(blame.total_queue_us, 1e-9)
    for (c_op, c_ten, res), us in blame.top_culprits(top):
        table.add_row(c_op, _tenant_text(c_ten), res,
                      round(us / ops, 2), f"{us / total:.1%}")
    table.add_note(
        "every gated queue microsecond is attributed to the occupant "
        "whose departure admitted the victim (shares sum to 100% of "
        "queued time); '(unknown)' = unlabelled holder, "
        "'(batch-window)' = Raft batching config, not another op")
    return table


def tenant_table(artifact: Dict) -> Table:
    blame: BlameMatrix = artifact["blame"]
    matrix = blame.tenant_matrix()
    victims = sorted({v for v, _c in matrix}, key=lambda t: t or "")
    table = Table(
        f"{blame.name}: tenant interference (queued us blamed on each "
        f"culprit tenant)",
        ["victim tenant", "culprit tenant", "us", "share of victim's "
         "queueing"])
    victim_totals: Dict[Optional[str], float] = {}
    for (v_ten, _c), us in matrix.items():
        victim_totals[v_ten] = victim_totals.get(v_ten, 0.0) + us
    for v_ten in victims:
        denom = max(victim_totals.get(v_ten, 0.0), 1e-9)
        rows = sorted(((c, us) for (v, c), us in matrix.items()
                       if v == v_ten), key=lambda cu: (-cu[1], cu[0] or ""))
        for c_ten, us in rows:
            table.add_row(_tenant_text(v_ten), _tenant_text(c_ten),
                          round(us, 1), f"{us / denom:.1%}")
    table.add_note("cross-tenant rows are interference a placement or "
                   "rebalancing change could remove; same-tenant rows "
                   "are self-contention")
    return table


def run_blame(target: str, scale: str = "quick", out_base: str = "",
              systems: Optional[List[str]] = None,
              clients: Optional[int] = None,
              items: Optional[int] = None,
              top: int = 12) -> Tuple[List[Table], List[str], List[Dict]]:
    """Analyze ``target``; returns (tables, exemplar lines, artifacts)."""
    if target == "multitenant":
        artifacts = [run_multitenant(scale, clients=clients, items=items,
                                     out_base=out_base)]
    else:
        case = resolve_case(target)
        artifacts = [
            blame_point(system, target, case, scale, clients=clients,
                        items=items, out_base=out_base)
            for system in (systems or list(case.systems))
        ]
    tables: List[Table] = []
    lines: List[str] = []
    for artifact in artifacts:
        tables.append(culprit_table(artifact, top))
        blame: BlameMatrix = artifact["blame"]
        if len({t for (_v, t), _us in blame.victim_totals().items()}) > 1 \
                or target == "multitenant":
            tables.append(tenant_table(artifact))
        crit: CritPath = artifact["crit"]
        lines.append(f"exemplar victim path ({blame.name}, wrote "
                     f"{artifact['path']}):")
        lines.extend("  " + line for line in render_blame_exemplar(
            crit, root=artifact.get("exemplar_root")))
        lines.append("")
    return tables, lines, artifacts
