"""``mantle-exp trace`` — run an experiment traced and export the spans.

Runs the span-instrumented variant of an experiment (fig15 or table1), then

* writes one Chrome-trace / Perfetto JSON file with a ``pid`` track per
  case/system (open it at https://ui.perfetto.dev or ``chrome://tracing``),
* prints the experiment's span-derived tables plus a per-case span-tree
  breakdown (span counts and summed time per category), and
* cross-validates the span-derived numbers against the legacy
  ``OpContext``/:class:`~repro.sim.stats.MetricSet` counters — the two
  derivations must agree within 1% (they are bit-identical in practice,
  because the phase API is a shim over spans).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.report import Table
from repro.experiments.exportutil import default_out, ensure_valid
from repro.sim.trace import (
    aggregate_ops,
    category_summary,
    trace_stats,
    validate_chrome_trace,
    write_chrome_trace,
)

#: Experiments with a traced variant; values are ``run_traced`` callables
#: returning ``(tables, artifacts)``.
TRACEABLE = ("fig15", "table1")

#: Maximum relative disagreement tolerated between span-derived and
#: metric-derived values (the acceptance bound; observed error is 0).
AGREEMENT_TOLERANCE = 0.01


def _run_traced(experiment: str, scale: str) -> Tuple[List[Table], List[Dict]]:
    if experiment == "fig15":
        from repro.experiments.fig15_dirmod_breakdown import run_traced
    elif experiment == "table1":
        from repro.experiments.table1_rtts import run_traced
    else:
        raise ValueError(
            f"no traced variant for {experiment!r}; choose from {TRACEABLE}")
    return run_traced(scale)


def breakdown_table(artifacts: List[Dict]) -> Table:
    """Per-case span-tree summary: counts and summed time per category."""
    table = Table(
        "Span-tree breakdown per case",
        ["case", "spans", "dropped", "category", "count", "total us"])
    for artifact in artifacts:
        tracer = artifact["tracer"]
        summary = category_summary(tracer.spans)
        first = True
        for category in sorted(summary):
            count, total_us = summary[category]
            table.add_row(
                artifact["label"] if first else "",
                len(tracer.spans) if first else "",
                tracer.dropped if first else "",
                category, count, round(total_us, 1))
            first = False
    return table


def agreement_table(artifacts: List[Dict]) -> Tuple[Table, float]:
    """Cross-validate span-derived vs MetricSet-derived numbers.

    Returns the comparison table and the worst relative error observed over
    mean latency, mean RPC count and every per-phase mean.
    """
    table = Table(
        "Span-derived vs metric-derived agreement",
        ["case", "quantity", "spans", "metrics", "rel err"])
    worst = 0.0

    def compare(label: str, quantity: str, from_spans: float,
                from_metrics: float) -> None:
        nonlocal worst
        denom = max(abs(from_metrics), 1e-9)
        err = abs(from_spans - from_metrics) / denom
        worst = max(worst, err)
        table.add_row(label, quantity, round(from_spans, 3),
                      round(from_metrics, 3), f"{err:.2%}")

    for artifact in artifacts:
        label, op = artifact["label"], artifact["op"]
        metrics = artifact["metrics"]
        agg = aggregate_ops(artifact["tracer"].spans).get(op)
        if agg is None:
            raise RuntimeError(f"no {op!r} spans for case {label}")
        compare(label, "mean latency us", agg.mean_latency_us,
                metrics.mean_latency_us(op))
        compare(label, "mean rpcs", agg.mean_rpcs, metrics.mean_rpcs(op))
        for phase, value in metrics.phase_breakdown(op).items():
            compare(label, f"phase {phase} us",
                    agg.mean_phase_us(phase), value)
    return table, worst


def run_trace(experiment: str, scale: str = "quick",
              out_path: str = "") -> Tuple[List[Table], dict]:
    """Run ``experiment`` traced; returns (all tables, chrome payload).

    Raises ``RuntimeError`` if the exported JSON fails schema validation or
    the span/metric cross-check exceeds :data:`AGREEMENT_TOLERANCE`.
    """
    out_path = out_path or default_out("trace", experiment, ".json")
    tables, artifacts = _run_traced(experiment, scale)
    sections = [(a["label"], a["tracer"].spans) for a in artifacts]
    stats = {a["label"]: trace_stats(a["tracer"]) for a in artifacts}
    payload = write_chrome_trace(out_path, sections, stats=stats)
    ensure_valid(validate_chrome_trace(payload), "exported Chrome trace")
    agreement, worst = agreement_table(artifacts)
    agreement.add_note(
        f"worst relative error {worst:.2%} "
        f"(tolerance {AGREEMENT_TOLERANCE:.0%})")
    if worst > AGREEMENT_TOLERANCE:
        raise RuntimeError(
            f"span-derived numbers diverge from metrics by {worst:.2%} "
            f"(> {AGREEMENT_TOLERANCE:.0%})")
    summary = breakdown_table(artifacts)
    summary.add_note(f"Chrome trace written to {out_path} "
                     f"({len(payload['traceEvents'])} events); open with "
                     "https://ui.perfetto.dev")
    total_dropped = sum(s["dropped"] for s in stats.values())
    if total_dropped > 0:
        summary.add_note(
            f"!!! WARNING: {total_dropped} spans fell out of the trace "
            f"ring across cases — the breakdown above under-counts; see "
            f"the traceStats key in {out_path}")
    return tables + [summary, agreement], payload
