"""Reproductions of every table and figure in the paper's evaluation.

Each module reproduces one exhibit and registers itself in
:data:`REGISTRY`; run them via ``mantle-exp run <id>`` or programmatically::

    from repro.experiments import get_experiment
    tables = get_experiment("fig12").run(scale="quick")

``scale="quick"`` keeps runs laptop-fast; ``scale="full"`` uses larger
client counts and namespaces (the shapes are the same, the statistics
tighter).  EXPERIMENTS.md records paper-vs-measured for every exhibit.
"""

from repro.experiments.base import REGISTRY, Experiment, get_experiment, list_experiments

# Importing the modules populates the registry.
from repro.experiments import (  # noqa: E402,F401
    ext_colocation,
    ext_failover,
    ext_rdma,
    fig03_namespaces,
    fig04_dbtable,
    fig10_applications,
    fig11_latency_cdf,
    fig12_read_throughput,
    fig13_read_breakdown,
    fig14_dirmod_throughput,
    fig15_dirmod_breakdown,
    fig16_ablation,
    fig17_depth,
    fig18_cache_k,
    fig19_scalability,
    fig20_caching,
    table1_rtts,
    table3_production,
)

__all__ = ["REGISTRY", "Experiment", "get_experiment", "list_experiments"]
