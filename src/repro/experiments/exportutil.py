"""Shared export plumbing for the ``mantle-exp`` artifact subcommands.

``trace``, ``telemetry`` and ``profile`` all follow the same contract:
derive a default output path from the subcommand + target name, schema-
validate the payload *before* writing (a malformed artifact should fail
the run, not surface later in a viewer), and write JSON with a trailing
newline.  This module is that contract, extracted so the three commands
cannot drift apart.
"""

from __future__ import annotations

import json
from typing import Any, Sequence


def default_out(kind: str, name: str, suffix: str = "") -> str:
    """Default artifact path ``<kind>_<name><suffix>`` (cwd-relative).

    ``name`` is sanitised so figure/op labels can never escape into
    directory separators or break shell quoting.
    """
    safe = name.replace("/", "_").replace(" ", "_")
    return f"{kind}_{safe}{suffix}"


def ensure_valid(problems: Sequence[str], what: str,
                 limit: int = 5) -> None:
    """Raise ``RuntimeError`` summarising validator ``problems``, if any."""
    if not problems:
        return
    shown = "; ".join(problems[:limit])
    extra = len(problems) - limit
    if extra > 0:
        shown += f" (+{extra} more)"
    raise RuntimeError(f"{what} failed schema validation: {shown}")


def write_json_payload(path: str, payload: Any, indent: int = 1) -> Any:
    """Write ``payload`` as JSON to ``path``; returns the payload."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, default=str)
        handle.write("\n")
    return payload
