"""``mantle-exp live`` — drive a real asyncio Mantle cluster.

Three subtargets:

* ``live smoke`` — start a cluster (three OS processes via ``mantle-serve``
  by default, or in-process with ``--in-process``), push N operations
  through :class:`~repro.runtime.client.LiveClient`, and fail unless every
  op succeeds and every role exits cleanly.  ``--trace``/``--telemetry``
  turn on the wall-clock instrumentation and additionally fail the run
  unless the merged cross-process trace and every metrics snapshot
  validate — the CI ``live-obs`` job.

* ``live trace`` — run a small traced workload, collect every process's
  span buffer (client included), check the cross-process links stitch
  into connected per-op trees, and write one merged Chrome-trace /
  Perfetto JSON file with a pid track per process.

* ``live fig12`` — the sim-vs-live companion to Figure 12's read path: the
  same namespace is built and the same read mix is run through the
  simulated deployment and a live cluster, and per-op latency is printed
  side by side.  RPC rounds per op must agree exactly (same protocol, same
  code); latency legitimately differs — and with both sides traced, the
  differential table says *where*: per-phase (wire / fsync / cpu / queue)
  microseconds aligned sim vs live, with divergences beyond a threshold
  flagged.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Any, Dict, List, Tuple

from repro.bench.report import Table, print_tables
from repro.core.api import MantleClient
from repro.core.config import MantleConfig
from repro.errors import MetadataError
from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)
from repro.ops import DirStat, ObjStat, ReadDir

#: fig12-companion namespace shape (quick scale).
LIVE_DIRS = 8
LIVE_OBJS_PER_DIR = 4

#: A sim-vs-live phase divergence is only flagged when at least one side
#: spends this much per op — below it, wall-clock noise dominates.
DIVERGENCE_FLOOR_US = 25.0


# -- cluster plumbing --------------------------------------------------------

def _start_cluster(in_process: bool, wal_dir=None, instrument: bool = False,
                   metrics: bool = False):
    """Start and return the chosen cluster flavour.

    ``instrument`` turns on tracing+telemetry on every role (via the
    config for in-process roles, via ``mantle-serve --trace --telemetry``
    for spawned ones); ``metrics`` gives each role an ephemeral metrics
    HTTP port.
    """
    if in_process:
        from repro.runtime.live import InProcessCluster

        config = MantleConfig.small()
        if instrument:
            config = config.copy(tracing=True, telemetry=True)
        cluster = InProcessCluster(config=config, wal_dir=wal_dir,
                                   metrics=metrics)
    else:
        from repro.runtime.live import ProcessCluster

        cluster = ProcessCluster(wal_dir=wal_dir, trace=instrument,
                                 telemetry=instrument, metrics=metrics)
    cluster.start()
    return cluster


def _stop_cluster(cluster) -> Dict[str, int]:
    """Stop either cluster flavour; returns role exit codes (process mode)."""
    return cluster.stop() or {}


def _role_trace_snapshots(cluster) -> List[dict]:
    """One trace snapshot per role, however the cluster is hosted."""
    from repro.runtime import obs
    from repro.runtime.live import InProcessCluster

    if isinstance(cluster, InProcessCluster):
        return cluster.trace_snapshots()
    return obs.collect_snapshots(cluster.endpoints)


def _role_metrics_snapshots(cluster) -> List[dict]:
    from repro.runtime import obs
    from repro.runtime.live import InProcessCluster

    if isinstance(cluster, InProcessCluster):
        return cluster.metrics_snapshots()
    return obs.collect_snapshots(cluster.endpoints,
                                 method="obs.metrics_snapshot")


def _reset_role_tracers(cluster) -> None:
    """Drop every role's collected spans (fig12: exclude namespace build)."""
    from repro.runtime import obs
    from repro.runtime.live import InProcessCluster

    if isinstance(cluster, InProcessCluster):
        for runtime in cluster.runtimes.values():
            runtime.tracer.reset()
    else:
        obs.collect_snapshots(cluster.endpoints, method="obs.reset")


def _trace_problems(snapshots: List[dict]) -> List[str]:
    """Every validator the merged cross-process trace must pass."""
    from repro.runtime import obs
    from repro.sim.trace import validate_chrome_trace

    problems: List[str] = []
    for snap in snapshots:
        for problem in obs.validate_trace_snapshot(snap):
            problems.append(f"{snap.get('process', '?')}: {problem}")
    problems.extend(obs.cross_process_problems(snapshots))
    problems.extend(obs.dyn_self_time_problems(snapshots))
    problems.extend(validate_chrome_trace(obs.merge_chrome_trace(snapshots)))
    return problems


def _fetch_metrics_http(port: int) -> Any:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/",
                                timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


# -- live smoke --------------------------------------------------------------

def run_live_smoke(args) -> int:
    from repro.runtime.client import LiveClient
    from repro.sim.trace import Tracer

    total_ops = args.ops
    want_digests = getattr(args, "digests", False)
    instrument = args.trace or args.telemetry or want_digests
    started = time.time()
    cluster = _start_cluster(args.in_process, wal_dir=args.wal_dir,
                             instrument=instrument, metrics=args.metrics)
    flavour = "in-process" if args.in_process else "3 OS processes"
    print(f"live-smoke: cluster up ({flavour}), "
          f"proxy at {cluster.proxy_endpoint}")

    errors: List[Tuple[str, str]] = []
    obs_problems: List[str] = []
    completed = 0
    try:
        tracer = Tracer() if args.trace else None
        with LiveClient(cluster.proxy_endpoint, tracer=tracer) as client:
            dirs = max(1, min(16, total_ops // 8))
            for d in range(dirs):
                client.mkdir(f"/smoke-{d}")
                completed += 1
            index = 0
            while completed < total_ops:
                d = index % dirs
                obj = f"/smoke-{d}/obj-{index}"
                # One op per iteration, cycling create -> stat -> list ->
                # delete so the namespace stays bounded and every op is
                # expected to succeed.
                stage = completed % 4
                try:
                    if stage == 0:
                        client.create(obj)
                        last_obj = obj
                        index += 1
                    elif stage == 1:
                        client.objstat(last_obj)
                    elif stage == 2:
                        client.listdir(f"/smoke-{d}")
                    else:
                        client.delete(last_obj)
                except MetadataError as exc:
                    errors.append((obj, f"{type(exc).__name__}: {exc}"))
                completed += 1
            metrics = client.metrics
        # Observability checks while the cluster is still serving.
        if args.trace:
            snapshots = _role_trace_snapshots(cluster)
            snapshots.append(client.trace_snapshot())
            obs_problems.extend(_trace_problems(snapshots))
            spans = sum(len(s.get("spans", ())) for s in snapshots)
            print(f"live-smoke: merged trace OK "
                  f"({spans} spans over {len(snapshots)} processes)"
                  if not obs_problems else
                  f"live-smoke: trace INVALID ({len(obs_problems)} problems)")
        if args.telemetry or args.metrics or want_digests:
            from repro.runtime import obs as obs_module

            if args.metrics:
                payloads = [_fetch_metrics_http(port)
                            for port in sorted(cluster.metrics_ports.values())]
                source = "metrics endpoint"
            else:
                payloads = _role_metrics_snapshots(cluster)
                source = "obs.metrics_snapshot"
            for payload in payloads:
                for problem in obs_module.validate_metrics_snapshot(payload):
                    obs_problems.append(
                        f"{source} ({payload.get('process', '?')}): "
                        f"{problem}")
            print(f"live-smoke: {len(payloads)} {source} snapshots "
                  "schema-checked")
            if want_digests:
                merged = obs_module.merged_digests(payloads)
                recorded = sum(d.total_count for d in merged.values())
                if not merged:
                    obs_problems.append(
                        "no latency digests in any metrics snapshot "
                        "(--digests)")
                elif recorded <= 0:
                    obs_problems.append(
                        "merged latency digests recorded zero completions "
                        "(--digests)")
                else:
                    print(f"live-smoke: merged {len(merged)} cluster-wide "
                          f"digests covering {recorded} completions")
    finally:
        codes = _stop_cluster(cluster)
    elapsed = time.time() - started

    for path, message in errors[:10]:
        print(f"live-smoke: ERROR at {path}: {message}")
    for problem in obs_problems[:10]:
        print(f"live-smoke: OBS PROBLEM: {problem}")
    dirty = {role: code for role, code in codes.items() if code != 0}
    rate = completed / elapsed if elapsed > 0 else 0.0
    print(f"live-smoke: {completed} ops in {elapsed:.1f}s "
          f"({rate:,.0f} ops/s), {len(errors)} errors, "
          f"shutdown codes {codes or '{in-process}'}")
    if metrics.latency:
        overall = sorted(s for rec in metrics.latency.values()
                         for s in rec.samples)
        mid = overall[len(overall) // 2] / 1000.0
        print(f"live-smoke: median op latency {mid:.2f} ms")
    if errors or dirty or obs_problems:
        print("live-smoke: FAIL")
        return 1
    print("live-smoke: OK")
    return 0


# -- shared workload ---------------------------------------------------------

def _build_namespace(client) -> List[str]:
    paths = []
    for d in range(LIVE_DIRS):
        client.mkdir(f"/bench-{d}")
        for o in range(LIVE_OBJS_PER_DIR):
            path = f"/bench-{d}/obj-{o}"
            client.create(path)
            paths.append(path)
    return paths


def _read_mix(paths: List[str], ops: int) -> List:
    mix = []
    for i in range(ops):
        path = paths[i % len(paths)]
        kind = i % 4
        if kind < 2:
            mix.append(ObjStat(path))
        elif kind == 2:
            mix.append(DirStat(path.rsplit("/", 1)[0]))
        else:
            mix.append(ReadDir(path.rsplit("/", 1)[0]))
    return mix


def _drive(client, ops) -> None:
    for op in ops:
        client.perform(op)


# -- live trace --------------------------------------------------------------

def run_live_trace(args) -> int:
    """Traced workload -> one merged, validated Chrome-trace export."""
    from repro.runtime import obs
    from repro.runtime.client import LiveClient
    from repro.sim.trace import Tracer, validate_chrome_trace

    cluster = _start_cluster(not args.processes, wal_dir=args.wal_dir,
                             instrument=True)
    try:
        client = LiveClient(cluster.proxy_endpoint, tracer=Tracer())
        with client:
            paths = _build_namespace(client)
            _drive(client, _read_mix(paths, args.ops))
        snapshots = _role_trace_snapshots(cluster)
        snapshots.append(client.trace_snapshot())
    finally:
        _stop_cluster(cluster)

    for snap in snapshots:
        ensure_valid(obs.validate_trace_snapshot(snap),
                     f"trace snapshot ({snap.get('process', '?')})")
    ensure_valid(obs.cross_process_problems(snapshots),
                 "cross-process span links")
    ensure_valid(obs.dyn_self_time_problems(snapshots),
                 "dynamic-tree self times")
    merged = obs.merge_chrome_trace(snapshots)
    ensure_valid(validate_chrome_trace(merged), "merged Chrome trace")

    stats = obs.op_tree_stats(snapshots)
    spanning = [tree for tree in stats["trees"]
                if len(tree["processes"]) >= 3]
    print(f"live-trace: {stats['ops']} op trees across "
          f"{len(snapshots)} processes; {len(spanning)} span >=3 processes "
          "(client -> proxy -> backend)")
    if not spanning:
        print("live-trace: FAIL — no op tree crosses client+proxy+backend; "
              "trace-context propagation is broken")
        return 1
    out_path = args.out or default_out("live", "trace", ".trace.json")
    write_json_payload(out_path, merged)
    print(f"live-trace: {len(merged['traceEvents'])} events -> {out_path}")
    print("live-trace: open at https://ui.perfetto.dev or chrome://tracing")
    return 0


# -- live fig12 companion ----------------------------------------------------

def run_live_fig12(args) -> int:
    from repro.runtime import obs
    from repro.runtime.client import LiveClient
    from repro.sim.trace import Tracer

    # Simulated side, traced: the tracer is reset after the namespace
    # build so the phase breakdown covers exactly the measured read mix.
    sim_client = MantleClient(MantleConfig.small(tracing=True))
    paths = _build_namespace(sim_client)
    sim_tracer = sim_client.system.sim.tracer
    sim_tracer.reset()
    _drive(sim_client, _read_mix(paths, args.ops))
    sim_metrics = sim_client.metrics
    sim_snapshot = obs.snapshot_from_tracer(
        "sim", sim_tracer, now_us=sim_client.system.sim.now)
    sim_client.close()
    sim_phases = obs.phase_breakdown([sim_snapshot])

    # Live side, identically traced and identically reset.
    cluster = _start_cluster(not args.processes, wal_dir=args.wal_dir,
                             instrument=True)
    try:
        live_client = LiveClient(cluster.proxy_endpoint, tracer=Tracer())
        with live_client:
            live_paths = _build_namespace(live_client)
            assert live_paths == paths
            _reset_role_tracers(cluster)
            live_client.tracer.reset()
            _drive(live_client, _read_mix(live_paths, args.ops))
            live_metrics = live_client.metrics
        snapshots = _role_trace_snapshots(cluster)
        snapshots.append(live_client.trace_snapshot())
    finally:
        _stop_cluster(cluster)
    ensure_valid(obs.cross_process_problems(snapshots),
                 "live cross-process span links")
    live_phases = obs.phase_breakdown(snapshots)

    table = Table(
        title="fig12 companion: read-path latency, simulated vs live (us)",
        headers=("op", "n",
                 "sim mean", "sim p50", "sim p99", "sim rpcs",
                 "live mean", "live p50", "live p99", "live rpcs"))
    for op_name in sorted(sim_metrics.latency):
        sim_lat = sim_metrics.latency[op_name]
        live_lat = live_metrics.latency[op_name]
        sim_rpcs = sim_metrics.rpc_rounds[op_name].mean
        live_rpcs = live_metrics.rpc_rounds[op_name].mean
        table.add_row(
            op_name, sim_lat.count,
            f"{sim_lat.mean:.0f}", f"{sim_lat.p50:.0f}",
            f"{sim_lat.p99:.0f}", f"{sim_rpcs:.2f}",
            f"{live_lat.mean:.0f}", f"{live_lat.p50:.0f}",
            f"{live_lat.p99:.0f}", f"{live_rpcs:.2f}")
        if abs(sim_rpcs - live_rpcs) > 1e-9:
            table.add_note(
                f"RPC-round MISMATCH for {op_name}: sim {sim_rpcs:.2f} "
                f"vs live {live_rpcs:.2f} — protocol divergence!")
    table.add_note(
        "Same namespace, same op sequence, same proxy/TafDB/IndexNode "
        "code; only the runtime differs (DES cost model vs asyncio on "
        "localhost TCP).")
    table.add_note(
        "RPC rounds per op must match exactly; latency is expected to "
        "differ (that contrast is the experiment).")

    diff = Table(
        title="fig12 differential: mean per-phase us per op, sim vs live",
        headers=("op", "side", "mean", "wire", "fsync", "cpu", "queue",
                 "other"))
    flagged: List[str] = []
    for op_name in sorted(sim_phases):
        sim_p = sim_phases[op_name]
        live_p = live_phases.get(op_name)
        diff.add_row(op_name, "sim", f"{sim_p.mean_latency_us:.0f}",
                     *(f"{sim_p.mean_phase_us(k):.0f}"
                       for k in obs.PHASE_KINDS),
                     f"{sim_p.mean_other_us:.0f}")
        if live_p is None:
            diff.add_note(f"{op_name}: no live op roots traced")
            continue
        diff.add_row("", "live", f"{live_p.mean_latency_us:.0f}",
                     *(f"{live_p.mean_phase_us(k):.0f}"
                       for k in obs.PHASE_KINDS),
                     f"{live_p.mean_other_us:.0f}")
        for kind in obs.PHASE_KINDS:
            sim_us = sim_p.mean_phase_us(kind)
            live_us = live_p.mean_phase_us(kind)
            if max(sim_us, live_us) < DIVERGENCE_FLOOR_US:
                continue
            ratio = live_us / sim_us if sim_us > 1e-9 else float("inf")
            if ratio > args.divergence or ratio < 1.0 / args.divergence:
                flagged.append(
                    f"{op_name}/{kind}: sim {sim_us:.0f}us vs live "
                    f"{live_us:.0f}us ({ratio:.1f}x)")
    for flag in flagged:
        diff.add_note("DIVERGENCE " + flag)
    diff.add_note(
        "Phases come from the same span charges on both sides (the live "
        "tree stitched across processes via trace context); 'other' is "
        "latency no charge explains — modelled queueing in the sim, event-"
        "loop scheduling live.")
    diff.add_note(
        f"Divergence flagged when sim and live differ by more than "
        f"{args.divergence:.0f}x and either side exceeds "
        f"{DIVERGENCE_FLOOR_US:.0f}us/op.")
    print_tables([table, diff], header="### live fig12 companion")
    return 0


def add_live_parser(sub) -> None:
    """Register the ``live`` subcommand on the mantle-exp parser."""
    live_parser = sub.add_parser(
        "live",
        help="run a real asyncio cluster: smoke test, traced run, or "
             "sim-vs-live tables")
    live_sub = live_parser.add_subparsers(dest="live_command", required=True)

    smoke = live_sub.add_parser(
        "smoke", help="N ops through a live cluster; fail on any error")
    smoke.add_argument("--ops", type=int, default=1000,
                       help="operation count (default 1000)")
    smoke.add_argument("--in-process", action="store_true",
                       help="run the roles on a thread instead of "
                            "spawning mantle-serve processes")
    smoke.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files")
    smoke.add_argument("--trace", action="store_true",
                       help="trace every process and fail unless the "
                            "merged cross-process trace validates")
    smoke.add_argument("--telemetry", action="store_true",
                       help="enable telemetry and schema-check every "
                            "role's metrics snapshot")
    smoke.add_argument("--metrics", action="store_true",
                       help="serve per-role metrics HTTP endpoints and "
                            "schema-check what they return")
    smoke.add_argument("--digests", action="store_true",
                       help="additionally merge every role's windowed "
                            "latency digests cluster-wide and fail if "
                            "none recorded any completions")

    trace = live_sub.add_parser(
        "trace", help="traced run -> one merged Chrome-trace JSON export")
    trace.add_argument("--ops", type=int, default=80,
                       help="read ops after the namespace build "
                            "(default 80)")
    trace.add_argument("--processes", action="store_true",
                       help="use real OS processes for the cluster")
    trace.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files")
    trace.add_argument("--out", default=None,
                       help="output path (default live_trace.trace.json)")

    fig12 = live_sub.add_parser(
        "fig12", help="print sim-vs-live read-path latency and the "
                      "per-phase differential side by side")
    fig12.add_argument("--ops", type=int, default=200,
                       help="read ops per side (default 200)")
    fig12.add_argument("--processes", action="store_true",
                       help="use real OS processes for the live side")
    fig12.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files")
    fig12.add_argument("--divergence", type=float, default=10.0,
                       help="flag phases whose sim/live ratio exceeds "
                            "this factor either way (default 10)")


def cmd_live(args) -> int:
    if args.live_command == "smoke":
        return run_live_smoke(args)
    if args.live_command == "trace":
        return run_live_trace(args)
    return run_live_fig12(args)
