"""``mantle-exp live`` — drive a real asyncio Mantle cluster.

Two subtargets:

* ``live smoke`` — start a cluster (three OS processes via ``mantle-serve``
  by default, or in-process with ``--in-process``), push N operations
  through :class:`~repro.runtime.client.LiveClient`, and fail unless every
  op succeeds and every role exits cleanly.  This is the CI ``live-smoke``
  job.

* ``live fig12`` — the sim-vs-live companion to Figure 12's read path: the
  same namespace is built and the same read mix is run through the
  simulated deployment and a live cluster, and per-op latency is printed
  side by side.  RPC rounds per op must agree exactly (same protocol, same
  code); latency legitimately differs — that contrast, modelled cost vs.
  a real event loop on localhost TCP, is the point of the table.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.bench.report import Table, print_tables
from repro.core.api import MantleClient
from repro.core.config import MantleConfig
from repro.errors import MetadataError
from repro.ops import DirStat, Mkdir, ObjStat, ReadDir

#: fig12-companion namespace shape (quick scale).
LIVE_DIRS = 8
LIVE_OBJS_PER_DIR = 4


def _start_cluster(in_process: bool, wal_dir=None):
    """Returns (endpoint, stop_callable) for the chosen cluster flavour."""
    if in_process:
        from repro.runtime.live import InProcessCluster

        cluster = InProcessCluster()
        endpoint = cluster.start()
        return endpoint, lambda: (cluster.stop(), {})[1]
    from repro.runtime.live import ProcessCluster

    cluster = ProcessCluster(wal_dir=wal_dir)
    endpoint = cluster.start()
    return endpoint, cluster.stop


# -- live smoke --------------------------------------------------------------

def run_live_smoke(args) -> int:
    from repro.runtime.client import LiveClient

    total_ops = args.ops
    started = time.time()
    endpoint, stop = _start_cluster(args.in_process, wal_dir=args.wal_dir)
    flavour = "in-process" if args.in_process else "3 OS processes"
    print(f"live-smoke: cluster up ({flavour}), proxy at {endpoint}")

    errors: List[Tuple[str, str]] = []
    completed = 0
    try:
        with LiveClient(endpoint) as client:
            dirs = max(1, min(16, total_ops // 8))
            for d in range(dirs):
                client.mkdir(f"/smoke-{d}")
                completed += 1
            index = 0
            while completed < total_ops:
                d = index % dirs
                obj = f"/smoke-{d}/obj-{index}"
                # One op per iteration, cycling create -> stat -> list ->
                # delete so the namespace stays bounded and every op is
                # expected to succeed.
                stage = completed % 4
                try:
                    if stage == 0:
                        client.create(obj)
                        last_obj = obj
                        index += 1
                    elif stage == 1:
                        client.objstat(last_obj)
                    elif stage == 2:
                        client.listdir(f"/smoke-{d}")
                    else:
                        client.delete(last_obj)
                except MetadataError as exc:
                    errors.append((obj, f"{type(exc).__name__}: {exc}"))
                completed += 1
            metrics = client.metrics
    finally:
        codes = stop()
    elapsed = time.time() - started

    for path, message in errors[:10]:
        print(f"live-smoke: ERROR at {path}: {message}")
    dirty = {role: code for role, code in codes.items() if code != 0}
    rate = completed / elapsed if elapsed > 0 else 0.0
    print(f"live-smoke: {completed} ops in {elapsed:.1f}s "
          f"({rate:,.0f} ops/s), {len(errors)} errors, "
          f"shutdown codes {codes or '{in-process}'}")
    if metrics.latency:
        overall = sorted(s for rec in metrics.latency.values()
                         for s in rec.samples)
        mid = overall[len(overall) // 2] / 1000.0
        print(f"live-smoke: median op latency {mid:.2f} ms")
    if errors or dirty:
        print("live-smoke: FAIL")
        return 1
    print("live-smoke: OK")
    return 0


# -- live fig12 companion ----------------------------------------------------

def _build_namespace(client) -> List[str]:
    paths = []
    for d in range(LIVE_DIRS):
        client.mkdir(f"/bench-{d}")
        for o in range(LIVE_OBJS_PER_DIR):
            path = f"/bench-{d}/obj-{o}"
            client.create(path)
            paths.append(path)
    return paths


def _read_mix(paths: List[str], ops: int) -> List:
    mix = []
    for i in range(ops):
        path = paths[i % len(paths)]
        kind = i % 4
        if kind < 2:
            mix.append(ObjStat(path))
        elif kind == 2:
            mix.append(DirStat(path.rsplit("/", 1)[0]))
        else:
            mix.append(ReadDir(path.rsplit("/", 1)[0]))
    return mix


def _drive(client, ops) -> None:
    for op in ops:
        client.perform(op)


def run_live_fig12(args) -> int:
    from repro.runtime.client import LiveClient

    sim_client = MantleClient(MantleConfig.small())
    paths = _build_namespace(sim_client)
    sim_ops = _read_mix(paths, args.ops)
    _drive(sim_client, sim_ops)
    sim_metrics = sim_client.metrics
    sim_client.close()

    endpoint, stop = _start_cluster(not args.processes,
                                    wal_dir=args.wal_dir)
    try:
        with LiveClient(endpoint) as live_client:
            live_paths = _build_namespace(live_client)
            assert live_paths == paths
            _drive(live_client, _read_mix(live_paths, args.ops))
            live_metrics = live_client.metrics
    finally:
        stop()

    table = Table(
        title="fig12 companion: read-path latency, simulated vs live (us)",
        headers=("op", "n",
                 "sim mean", "sim p50", "sim p99", "sim rpcs",
                 "live mean", "live p50", "live p99", "live rpcs"))
    for op_name in sorted(sim_metrics.latency):
        sim_lat = sim_metrics.latency[op_name]
        live_lat = live_metrics.latency[op_name]
        sim_rpcs = sim_metrics.rpc_rounds[op_name].mean
        live_rpcs = live_metrics.rpc_rounds[op_name].mean
        table.add_row(
            op_name, sim_lat.count,
            f"{sim_lat.mean:.0f}", f"{sim_lat.p50:.0f}",
            f"{sim_lat.p99:.0f}", f"{sim_rpcs:.2f}",
            f"{live_lat.mean:.0f}", f"{live_lat.p50:.0f}",
            f"{live_lat.p99:.0f}", f"{live_rpcs:.2f}")
        if abs(sim_rpcs - live_rpcs) > 1e-9:
            table.add_note(
                f"RPC-round MISMATCH for {op_name}: sim {sim_rpcs:.2f} "
                f"vs live {live_rpcs:.2f} — protocol divergence!")
    table.add_note(
        "Same namespace, same op sequence, same proxy/TafDB/IndexNode "
        "code; only the runtime differs (DES cost model vs asyncio on "
        "localhost TCP).")
    table.add_note(
        "RPC rounds per op must match exactly; latency is expected to "
        "differ (that contrast is the experiment).")
    print_tables([table], header="### live fig12 companion")
    return 0


def add_live_parser(sub) -> None:
    """Register the ``live`` subcommand on the mantle-exp parser."""
    live_parser = sub.add_parser(
        "live",
        help="run a real asyncio cluster: smoke test or sim-vs-live table")
    live_sub = live_parser.add_subparsers(dest="live_command", required=True)

    smoke = live_sub.add_parser(
        "smoke", help="N ops through a live cluster; fail on any error")
    smoke.add_argument("--ops", type=int, default=1000,
                       help="operation count (default 1000)")
    smoke.add_argument("--in-process", action="store_true",
                       help="run the roles on a thread instead of "
                            "spawning mantle-serve processes")
    smoke.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files")

    fig12 = live_sub.add_parser(
        "fig12", help="print sim-vs-live read-path latency side by side")
    fig12.add_argument("--ops", type=int, default=200,
                       help="read ops per side (default 200)")
    fig12.add_argument("--processes", action="store_true",
                       help="use real OS processes for the live side")
    fig12.add_argument("--wal-dir", default=None,
                       help="directory for write-ahead files")


def cmd_live(args) -> int:
    if args.live_command == "smoke":
        return run_live_smoke(args)
    return run_live_fig12(args)
