"""``mantle-exp profile`` — cost-center profiles and differential profiles.

Reruns a figure's knee point (or a bare mdtest op) with cost attribution
on, then per system

* prints a top-N self-time table — (frame, cost-kind) centers ranked by
  attributed simulated microseconds, normalised per completed op,
* writes ``profile_<target>_<system>.folded`` (flamegraph.pl input) and
  ``profile_<target>_<system>.speedscope.json`` (https://speedscope.app),
  both schema-validated before the command succeeds, and
* reconciles the profiler's per-host CPU self-time against telemetry's
  ``host.cpu_busy_us`` counters (same charge sites, so they must agree
  within :data:`RECONCILE_TOLERANCE` — observed error is 0).

``--diff A B`` profiles the same point on two systems and aligns the
profiles by (frame, kind), printing signed per-op deltas plus a mechanism
note for the frames the repo understands — e.g. at the fig12 knee the top
rows name InfiniFS's per-level ``rpc:read`` resolution round trips versus
Mantle's single server-side ``index.lookup``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_profiled, pick
from repro.experiments.exportutil import default_out, ensure_valid
from repro.sim.profile import (
    CostProfile,
    diff_profiles,
    profile_from_tracer,
    validate_folded,
    validate_speedscope,
    write_folded,
    write_speedscope,
)

#: Max relative disagreement between profiler CPU and telemetry busy
#: counters (they share charge sites; observed error is exactly 0).
RECONCILE_TOLERANCE = 0.01


@dataclasses.dataclass(frozen=True)
class Case:
    """One profiled sweep point: the op plus (quick, full) budgets."""

    op: str
    mode: str = "exclusive"
    clients: Tuple[int, int] = (32, 128)
    items: Tuple[int, int] = (10, 30)
    systems: Tuple[str, ...] = ("mantle", "tectonic")


#: figure id -> its knee point (budgets mirror ``mantle-exp telemetry``).
CASES: Dict[str, Case] = {
    # Fig 12 knee: stat scaling — baselines burn per-level resolution
    # RPCs/CPU, Mantle resolves server-side in one hop.
    "fig12": Case("objstat", clients=(64, 192), items=(12, 30),
                  systems=("mantle", "tectonic", "infinifs")),
    # Fig 14 knee: shared-directory mkdir — transaction conflicts and
    # fsync pressure dominate.
    "fig14": Case("mkdir", mode="shared", clients=(64, 160),
                  items=(10, 24), systems=("mantle", "tectonic")),
    # Fig 19 knee: create at high client counts rides the TafDB commit
    # fsync floor.
    "fig19": Case("create", clients=(320, 640), items=(10, 20),
                  systems=("mantle",)),
}

#: Bare mdtest ops accepted as targets (any system pair can be profiled).
OPS = ("mkdir", "create", "objstat", "dirstat", "delete", "rmdir")

#: Frame -> the mechanism it represents, used to annotate diff rows so a
#: delta names a cause instead of a label.
MECHANISMS: Dict[str, str] = {
    "rpc:lookup": "pathname-resolution round trip (one per op on Mantle; "
                  "baselines repeat it or skip it entirely)",
    "index.lookup": "server-side IndexTable resolution CPU on the "
                    "IndexNode (per-level probes + fixed request "
                    "overhead)",
    "rpc:read": "TafDB row-read round trip (InfiniFS resolves the path "
                "client-side, one read per directory level)",
    "rpc_read": "TafDB shard-server CPU handling row reads",
    "rpc:execute": "single-shard transaction commit round trip",
    "rpc_execute": "shard-side commit work: row writes + group-committed "
                   "WAL fsync",
    "tafdb.txn": "transaction coordination (1PC fast path or 2PC)",
    "tafdb.prepare": "2PC prepare fan-out (multi-shard transactions)",
    "raft.flush": "Raft log fsync on the IndexNode leader",
    "raft.apply": "applying committed Raft entries to the IndexTable",
    "lookup": "client-visible resolution phase (blocked time here is "
              "waiting on resolution sub-work)",
    "execution": "client-visible execution phase",
    "(unattributed)": "work outside any operation span (heartbeats, "
                      "compaction, setup)",
}

#: Cost-kind glosses for table notes.
KIND_NOTES = {
    "cpu": "core-occupancy from host.work",
    "fsync": "durable-flush time on a disk",
    "wire": "network flight time",
    "queue": "waiting for a busy core/disk/latch",
    "idle": "self-time not explained by any charge (blocked on "
            "children/commit waits)",
}


def resolve_case(target: str) -> Case:
    """Map a fig id or bare op name to its profiled sweep point."""
    case = CASES.get(target)
    if case is not None:
        return case
    if target in OPS:
        return Case(target)
    known = ", ".join(sorted(CASES) + list(OPS))
    raise ValueError(f"nothing to profile for {target!r}; choose from "
                     f"{known}")


def _reconcile_cpu(profile: CostProfile, telemetry) -> float:
    """Worst per-host relative error of profiler CPU vs telemetry busy."""
    worst = 0.0
    by_host = profile.cpu_by_host()
    hosts = set(h for h in by_host if h is not None)
    hosts.update(telemetry.hosts("host.cpu_busy_us"))
    for host in sorted(hosts):
        counter = telemetry.find("host.cpu_busy_us", host)
        expected = counter.total if counter is not None else 0.0
        got = by_host.get(host, 0.0)
        err = abs(got - expected) / max(expected, 1e-9)
        worst = max(worst, err)
    return worst


def profile_point(system: str, target: str, case: Case, scale: str,
                  clients: Optional[int] = None,
                  items: Optional[int] = None,
                  out_base: str = "") -> Dict:
    """Run one system's knee point instrumented; returns the artifact dict.

    Writes and validates both flame-graph exports, and raises
    ``RuntimeError`` if profiler CPU fails to reconcile with telemetry.
    """
    metrics, tracer, telemetry = mdtest_metrics_profiled(
        system, case.op, mode=case.mode,
        clients=clients or pick(scale, *case.clients),
        items=items or pick(scale, *case.items))
    profile = profile_from_tracer(tracer, name=f"{system} {case.op}")
    reconcile_err = _reconcile_cpu(profile, telemetry)
    if reconcile_err > RECONCILE_TOLERANCE:
        raise RuntimeError(
            f"{system}: profiler CPU diverges from telemetry busy "
            f"counters by {reconcile_err:.2%} (> "
            f"{RECONCILE_TOLERANCE:.0%})")
    base = out_base or default_out("profile", target)
    folded_path = f"{base}_{system}.folded"
    speedscope_path = f"{base}_{system}.speedscope.json"
    lines = write_folded(folded_path, profile)
    ensure_valid(validate_folded(lines), f"{folded_path}")
    payload = write_speedscope(speedscope_path, profile)
    ensure_valid(validate_speedscope(payload), f"{speedscope_path}")
    return {
        "system": system,
        "metrics": metrics,
        "profile": profile,
        "telemetry": telemetry,
        "reconcile_err": reconcile_err,
        "folded_path": folded_path,
        "speedscope_path": speedscope_path,
        "folded_lines": lines,
        "speedscope": payload,
    }


def summary_table(target: str, artifacts: List[Dict]) -> Table:
    """Per-system rollup: per-op cost-kind split + reconciliation error."""
    table = Table(
        f"{target} cost-kind split (us per completed op)",
        ["system", "ops", "lat us/op", "cpu", "fsync", "wire", "queue",
         "idle", "cpu vs telemetry"])
    for artifact in artifacts:
        profile: CostProfile = artifact["profile"]
        ops = max(profile.ops, 1)
        kinds = profile.cost_by_kind()
        table.add_row(
            artifact["system"], profile.ops,
            round(profile.total_root_us / ops, 1),
            *[round(kinds.get(kind, 0.0) / ops, 1)
              for kind in ("cpu", "fsync", "wire", "queue", "idle")],
            f"{artifact['reconcile_err']:.2%}")
    table.add_note("kinds: " + "; ".join(
        f"{kind}={note}" for kind, note in KIND_NOTES.items()))
    return table


def top_table(artifact: Dict, top: int) -> Table:
    """One system's hottest (frame, kind) self-time centers."""
    profile: CostProfile = artifact["profile"]
    ops = max(profile.ops, 1)
    total = max(profile.total_self_us, 1e-9)
    table = Table(
        f"{profile.name}: top self-time centers",
        ["frame", "kind", "self us", "us/op", "share"])
    for frame, kind, us in profile.top_self(top):
        table.add_row(frame, kind, round(us, 1), round(us / ops, 2),
                      f"{us / total:.1%}")
    table.add_note(
        f"wrote {artifact['folded_path']} and "
        f"{artifact['speedscope_path']}")
    return table


def run_profile(target: str, scale: str = "quick", out_base: str = "",
                systems: Optional[List[str]] = None,
                clients: Optional[int] = None,
                items: Optional[int] = None,
                top: int = 12) -> Tuple[List[Table], List[Dict]]:
    """Profile ``target`` on each system; returns (tables, artifacts)."""
    case = resolve_case(target)
    artifacts = [
        profile_point(system, target, case, scale, clients=clients,
                      items=items, out_base=out_base)
        for system in (systems or list(case.systems))
    ]
    tables = [summary_table(target, artifacts)]
    tables.extend(top_table(a, top) for a in artifacts)
    return tables, artifacts


def diff_table(base: Dict, other: Dict, top: int) -> Table:
    """Signed per-op cost deltas between two systems, largest first."""
    base_profile: CostProfile = base["profile"]
    other_profile: CostProfile = other["profile"]
    rows = diff_profiles(base_profile, other_profile)
    table = Table(
        f"differential profile: {other_profile.name} - "
        f"{base_profile.name} (per op)",
        ["frame", "kind", f"{base['system']} us/op",
         f"{other['system']} us/op", "delta us/op", "delta spans/op"])
    explained: List[str] = []
    for row in rows[:top]:
        table.add_row(
            row.frame, row.kind, round(row.base_us_per_op, 2),
            round(row.other_us_per_op, 2),
            f"{row.delta_us_per_op:+.2f}",
            f"{row.delta_spans_per_op:+.2f}")
        mechanism = MECHANISMS.get(row.frame)
        if mechanism and mechanism not in explained:
            explained.append(mechanism)
            table.add_note(f"{row.frame}: {mechanism}")
    table.add_note(
        f"positive delta = {other['system']} spends more; spans/op is "
        "the per-op span-count gap (extra RPC hops show up here)")
    return table


def run_profile_diff(base_system: str, other_system: str, target: str,
                     scale: str = "quick", out_base: str = "",
                     clients: Optional[int] = None,
                     items: Optional[int] = None,
                     top: int = 12) -> Tuple[List[Table], List[Dict]]:
    """Profile ``target`` on two systems and print the aligned deltas."""
    case = resolve_case(target)
    artifacts = [
        profile_point(system, target, case, scale, clients=clients,
                      items=items, out_base=out_base)
        for system in (base_system, other_system)
    ]
    tables = [summary_table(target, artifacts)]
    tables.append(diff_table(artifacts[0], artifacts[1], top))
    return tables, artifacts
