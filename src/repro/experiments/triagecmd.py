"""``mantle-exp triage`` — auto-triage of slow ops, phase by phase.

Reruns a figure's knee point (or a bare mdtest op) tail-instrumented:
a :class:`~repro.sim.trace.TailKeeper` retains the full span tree of
every op that errored or cleared its op type's adaptive duration
threshold, and windowed latency digests feed the phase segmentation in
:mod:`repro.bench.analyze`.  Then, per *anomalous* phase (saturated,
burst, or any phase whose verdict pinned a resource), the command

* pulls the tail exemplars that completed inside the phase window,
* runs the existing critical-path + blame machinery on just those ops
  (``build_critpath(root_where=...)``), gating on the same conservation
  identities ``critpath``/``blame`` use,
* prints one sentence per phase — "slow ops in phase X are gated by Y,
  blamed on Z" — backed by the full gating/blame tables, and
* writes a schema-validated ``triage_<target>_<system>.json``.

Every input is simulated-time telemetry and span durations, so the
export is byte-identical across the three kernels.  The trace's
sample/keep/drop accounting is embedded in the payload and a loud
warning is printed whenever spans fell out of the ring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bench.analyze import (
    PHASE_LABELS,
    Phase,
    anomalous_phases,
    primary_phase,
)
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_triaged, pick
from repro.experiments.critpathcmd import CONSERVATION_TOLERANCE
from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)
from repro.experiments.profilecmd import Case, resolve_case
from repro.sim.critpath import build_blame, build_critpath
from repro.sim.trace import CAT_OP, trace_stats

#: Gating centers / culprits listed per phase in the export.
EXPORT_TOP = 8


def dropped_warning(stats: Dict[str, int]) -> Optional[str]:
    """The loud line printed when spans fell out of the ring, or None."""
    if stats.get("dropped", 0) <= 0:
        return None
    return (f"!!! WARNING: {stats['dropped']} spans fell out of the trace "
            f"ring (finished {stats['finished']}, kept "
            f"{stats['kept_spans']} tail spans across "
            f"{stats['kept_roots']} trees); ring-based aggregates "
            f"under-count, tail exemplars are unaffected")


def _verdict_jsonable(verdict) -> Dict[str, Any]:
    return {
        "label": verdict.label,
        "scores": {key: round(value, 6)
                   for key, value in sorted(verdict.scores.items())},
        "hotspots": dict(sorted(verdict.hotspots.items())),
    }


def _phase_jsonable(phase: Phase) -> Dict[str, Any]:
    return {
        "label": phase.label,
        "window_us": [round(phase.window[0], 3), round(phase.window[1], 3)],
        "ops": phase.ops,
        "busy": round(phase.busy, 6),
        "rate_per_s": round(phase.rate_per_s, 3),
        "p99_us": round(phase.p99_us, 3),
        "verdict": _verdict_jsonable(phase.verdict),
    }


def _phase_exemplars(tracer, phase: Phase, is_last: bool) -> List[int]:
    """Root span ids of kept tail trees whose op completed in the phase.

    Completion time decides membership (that is when the latency digests
    record the op); the run's final phase is end-inclusive so the last
    op to finish is not orphaned.
    """
    lo, hi = phase.window
    out = []
    for tree in tracer.keeper.trees():
        root = tree[-1]
        if root.category != CAT_OP or root.end_us is None:
            continue
        if lo <= root.end_us < hi or (is_last and root.end_us == hi):
            out.append(root.span_id)
    return out


def _check_conservation(crit, blame, who: str) -> None:
    err = crit.conservation_error()
    if err > CONSERVATION_TOLERANCE:
        raise RuntimeError(
            f"{who}: critical-path segments cover {1 - err:.6%} of "
            f"exemplar latency (must telescope exactly)")
    err = blame.conservation_error()
    if err > CONSERVATION_TOLERANCE:
        raise RuntimeError(
            f"{who}: blame matrix covers {1 - err:.6%} of gated queue "
            f"time (occupant tags must decompose queue_res exactly)")


def _triage_phase(tracer, phase: Phase, is_last: bool,
                  who: str) -> Dict[str, Any]:
    """Fold one anomalous phase's tail exemplars into gating + blame."""
    exemplar_ids = _phase_exemplars(tracer, phase, is_last)
    entry: Dict[str, Any] = {
        "phase": phase.label,
        "window_us": [round(phase.window[0], 3),
                      round(phase.window[1], 3)],
        "verdict": _verdict_jsonable(phase.verdict),
        "exemplars": len(exemplar_ids),
        "gated_by": [],
        "blamed_on": [],
        "summary": (f"no tail exemplars completed in phase "
                    f"{phase.label!r}"),
    }
    if not exemplar_ids:
        return entry
    wanted = frozenset(exemplar_ids)
    crit = build_critpath(tracer.retained_spans(),
                          name=f"{who} {phase.label}",
                          root_where=lambda span: span.span_id in wanted)
    if crit.ops == 0:
        return entry
    blame = build_blame(crit)
    _check_conservation(crit, blame, f"{who} phase {phase.label}")
    total = max(crit.total_us, 1e-9)
    entry["gated_by"] = [
        {"host": host, "frame": frame, "kind": kind,
         "gated_us": round(us, 3), "share": round(us / total, 6)}
        for (host, frame, kind), us in crit.top_gating(EXPORT_TOP)]
    queue_total = max(blame.total_queue_us, 1e-9)
    entry["blamed_on"] = [
        {"culprit_op": c_op, "culprit_tenant": c_ten, "resource": res,
         "us": round(us, 3), "share": round(us / queue_total, 6)}
        for (c_op, c_ten, res), us in blame.top_culprits(EXPORT_TOP)]
    entry["critpath_conservation_error"] = crit.conservation_error()
    entry["blame_conservation_error"] = blame.conservation_error()
    entry["mean_exemplar_latency_us"] = round(crit.mean_latency_us, 3)
    entry["queue_share"] = round(blame.queue_share, 6)
    (g_host, g_frame, g_kind), g_us = crit.top_gating(1)[0]
    gate = f"{g_kind}@{g_host}" if g_host else g_kind
    culprits = blame.top_culprits(1)
    if culprits:
        (c_op, c_ten, c_res), _c_us = culprits[0]
        blamed = c_op + (f"/{c_ten}" if c_ten else "") + f" at {c_res}"
    else:
        blamed = "(nothing queued)"
    entry["summary"] = (
        f"slow ops in phase {phase.label!r} are gated by {gate} in "
        f"{g_frame} ({g_us / total:.0%} of exemplar latency), blamed "
        f"on {blamed}")
    return entry


def triage_point(system: str, target: str, case: Case, scale: str,
                 clients: Optional[int] = None,
                 items: Optional[int] = None,
                 out_base: str = "") -> Dict[str, Any]:
    """Run one system's knee point tail-instrumented; triage + export."""
    metrics, tracer, telemetry, phases = mdtest_metrics_triaged(
        system, case.op, mode=case.mode,
        clients=clients or pick(scale, *case.clients),
        items=items or pick(scale, *case.items))
    who = f"{system} {case.op}"
    stats = trace_stats(tracer)
    anomalous = anomalous_phases(phases)
    last_window = phases[-1].window if phases else (0.0, 0.0)
    triage = [_triage_phase(tracer, phase, phase.window == last_window, who)
              for phase in anomalous]
    primary = primary_phase(phases)
    payload: Dict[str, Any] = {
        "name": who,
        "system": system,
        "target": target,
        "op": case.op,
        "trace_stats": stats,
        "phases": [_phase_jsonable(phase) for phase in phases],
        "primary_phase": primary.label if primary is not None else None,
        "triage": triage,
    }
    base = out_base or default_out("triage", target)
    path = f"{base}_{system}.json"
    ensure_valid(validate_triage(payload), path)
    write_json_payload(path, payload)
    return {
        "system": system,
        "metrics": metrics,
        "tracer": tracer,
        "telemetry": telemetry,
        "phases": phases,
        "triage": triage,
        "stats": stats,
        "path": path,
        "payload": payload,
    }


def validate_triage(payload: Any) -> List[str]:
    """Schema-check a triage payload; returns a list of problems.

    Carries the load-bearing invariants into the export: phase labels
    are from the known set with ordered windows, and every triaged
    phase's conservation errors stay inside the critpath tolerance.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    for field in ("name", "system", "target", "op"):
        if not isinstance(payload.get(field), str) or not payload[field]:
            problems.append(f"missing {field}")
    stats = payload.get("trace_stats")
    if not isinstance(stats, dict):
        problems.append("missing trace_stats object")
    else:
        for field in ("started", "finished", "dropped", "sample_every",
                      "kept_roots", "kept_errors", "kept_spans",
                      "kept_evicted_roots"):
            value = stats.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(f"trace_stats.{field} must be a "
                                f"non-negative int")
    phases = payload.get("phases")
    if not isinstance(phases, list) or not phases:
        problems.append("missing phases array")
        phases = []
    for i, phase in enumerate(phases):
        where = f"phases[{i}]"
        if not isinstance(phase, dict):
            problems.append(f"{where}: not an object")
            continue
        if phase.get("label") not in PHASE_LABELS:
            problems.append(f"{where}: unknown label {phase.get('label')!r}")
        window = phase.get("window_us")
        if not (isinstance(window, list) and len(window) == 2
                and all(isinstance(v, (int, float)) for v in window)
                and window[0] <= window[1]):
            problems.append(f"{where}: bad window_us {window!r}")
        if not isinstance(phase.get("ops"), int) or phase["ops"] < 0:
            problems.append(f"{where}: ops must be a non-negative int")
        for field in ("busy", "rate_per_s", "p99_us"):
            value = phase.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: bad {field} {value!r}")
        verdict = phase.get("verdict")
        if not (isinstance(verdict, dict)
                and isinstance(verdict.get("label"), str)
                and isinstance(verdict.get("scores"), dict)):
            problems.append(f"{where}: bad verdict")
    primary = payload.get("primary_phase")
    if primary is not None and primary not in PHASE_LABELS:
        problems.append(f"unknown primary_phase {primary!r}")
    triage = payload.get("triage")
    if not isinstance(triage, list):
        problems.append("missing triage array")
        triage = []
    for i, entry in enumerate(triage):
        where = f"triage[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        if entry.get("phase") not in PHASE_LABELS:
            problems.append(f"{where}: unknown phase {entry.get('phase')!r}")
        exemplars = entry.get("exemplars")
        if not isinstance(exemplars, int) or exemplars < 0:
            problems.append(f"{where}: exemplars must be a non-negative int")
        if not isinstance(entry.get("summary"), str) or not entry["summary"]:
            problems.append(f"{where}: missing summary")
        for field in ("gated_by", "blamed_on"):
            if not isinstance(entry.get(field), list):
                problems.append(f"{where}: missing {field} array")
        if entry.get("gated_by"):
            for field in ("critpath_conservation_error",
                          "blame_conservation_error"):
                value = entry.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: bad {field} {value!r}")
                elif value > CONSERVATION_TOLERANCE:
                    problems.append(
                        f"{where}: {field} {value!r} exceeds the "
                        f"{CONSERVATION_TOLERANCE} conservation tolerance")
            share_sum = 0.0
            for j, center in enumerate(entry["gated_by"]):
                if not isinstance(center, dict) or \
                        not isinstance(center.get("share"), (int, float)):
                    problems.append(f"{where}: gated_by[{j}] malformed")
                    continue
                share_sum += center["share"]
            if share_sum > 1.0 + 1e-3:
                problems.append(f"{where}: gated_by shares sum to "
                                f"{share_sum:.6f} > 1")
    return problems


# ---------------------------------------------------------------------------
# Tables + entry point.
# ---------------------------------------------------------------------------


def phase_table(artifact: Dict[str, Any]) -> Table:
    phases: List[Phase] = artifact["phases"]
    table = Table(
        f"{artifact['system']}: phases ({len(phases)} segments)",
        ["phase", "window ms", "ops", "p99 us", "busy", "verdict"])
    for phase in phases:
        lo, hi = phase.window
        table.add_row(
            phase.label, f"[{lo / 1e3:.1f}, {hi / 1e3:.1f})", phase.ops,
            round(phase.p99_us, 1), f"{phase.busy:.2f}",
            phase.verdict.describe())
    table.add_note(
        "change-point segmentation of the busy-fraction/digest timelines; "
        "each phase is scored independently (rpc score is run-global)")
    return table


def triage_table(artifact: Dict[str, Any], top: int) -> Table:
    table = Table(
        f"{artifact['system']}: tail triage per anomalous phase",
        ["phase", "exemplars", "gated by", "share", "blamed on", "share"])
    for entry in artifact["triage"]:
        gates = entry["gated_by"][:top]
        culprits = entry["blamed_on"][:top]
        for i in range(max(len(gates), len(culprits), 1)):
            gate = gates[i] if i < len(gates) else None
            culprit = culprits[i] if i < len(culprits) else None
            gate_who = ""
            gate_share = ""
            if gate is not None:
                where = f"@{gate['host']}" if gate["host"] else ""
                gate_who = f"{gate['kind']}{where} in {gate['frame']}"
                gate_share = f"{gate['share']:.1%}"
            culprit_who = ""
            culprit_share = ""
            if culprit is not None:
                tenant = culprit["culprit_tenant"]
                culprit_who = (culprit["culprit_op"]
                               + (f"/{tenant}" if tenant else "")
                               + f" at {culprit['resource']}")
                culprit_share = f"{culprit['share']:.1%}"
            table.add_row(
                entry["phase"] if i == 0 else "",
                entry["exemplars"] if i == 0 else "",
                gate_who, gate_share, culprit_who, culprit_share)
    table.add_note(
        "exemplars are tail-kept op trees completing inside the phase "
        "window; gating shares cover 100% of exemplar latency, blame "
        "shares cover 100% of their queued time")
    return table


def run_triage(target: str, scale: str = "quick", out_base: str = "",
               systems: Optional[List[str]] = None,
               clients: Optional[int] = None,
               items: Optional[int] = None,
               top: int = 12) -> Tuple[List[Table], List[str], List[Dict]]:
    """Triage ``target``; returns (tables, summary lines, artifacts)."""
    case = resolve_case(target)
    artifacts = [
        triage_point(system, target, case, scale, clients=clients,
                     items=items, out_base=out_base)
        for system in (systems or list(case.systems))
    ]
    tables: List[Table] = []
    lines: List[str] = []
    for artifact in artifacts:
        tables.append(phase_table(artifact))
        if artifact["triage"]:
            tables.append(triage_table(artifact, top))
        warning = dropped_warning(artifact["stats"])
        if warning:
            lines.append(warning)
        for entry in artifact["triage"]:
            lines.append(f"{artifact['system']}: {entry['summary']}")
        if not artifact["triage"]:
            lines.append(f"{artifact['system']}: no anomalous phases — "
                         f"nothing to triage")
        lines.append(f"(wrote {artifact['path']})")
        lines.append("")
    return tables, lines, artifacts
