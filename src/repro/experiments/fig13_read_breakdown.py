"""Figure 13: latency breakdown of object ops and directory reads.

Paper: performance of these operations is determined by path resolution —
Mantle's lookup latency is 83.9-89.0 % below Tectonic, 80.0-84.2 % below
InfiniFS and 16.4-74.5 % below LocoFS.  InfiniFS folds objstat's execution
into its lookup phase; LocoFS resolves directory-op paths during execution.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import mdtest_metrics, pick, register
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP

OPS = ("create", "delete", "objstat", "dirstat")


@register("fig13", "Latency breakdown of object ops and directory reads",
          "Mantle's lookup latency 83.9-89.0%/80.0-84.2%/16.4-74.5% lower "
          "than Tectonic/InfiniFS/LocoFS")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 64, 192)
    items = pick(scale, 12, 30)
    table = Table(
        "Figure 13: mean per-phase latency (us)",
        ["op", "system", "lookup", "execution", "total"])
    lookup_by = {}
    for op in OPS:
        for system_name in SYSTEMS:
            metrics = mdtest_metrics(system_name, op, clients=clients,
                                     items=items)
            phases = metrics.phase_breakdown(op)
            lookup_by[(op, system_name)] = phases[PHASE_LOOKUP]
            table.add_row(op, system_name,
                          round(phases[PHASE_LOOKUP], 1),
                          round(phases[PHASE_EXECUTION], 1),
                          round(metrics.mean_latency_us(op), 1))
    reductions = Table(
        "Figure 13 (derived): Mantle lookup-latency reduction (%)",
        ["op", "vs tectonic", "vs infinifs", "vs locofs"])
    for op in OPS:
        row = [op]
        for other in ("tectonic", "infinifs", "locofs"):
            base = lookup_by[(op, other)]
            ours = lookup_by[(op, "mantle")]
            row.append(round(100 * (1 - ratio(ours, base)), 1) if base else 0)
        reductions.add_row(*row)
    reductions.add_note("paper ranges: 83.9-89.0 / 80.0-84.2 / 16.4-74.5; "
                        "LocoFS folds dir-op resolution into execution, so "
                        "its dirstat lookup column reads 0")
    return [table, reductions]
