"""Figure 13: latency breakdown of object ops and directory reads.

Paper: performance of these operations is determined by path resolution —
Mantle's lookup latency is 83.9-89.0 % below Tectonic, 80.0-84.2 % below
InfiniFS and 16.4-74.5 % below LocoFS.  InfiniFS folds objstat's execution
into its lookup phase; LocoFS resolves directory-op paths during execution.

``--check-profile`` reruns each point with the cost profiler's span stacks
attached and re-derives the lookup/execution columns from the *dynamic*
span tree (:func:`repro.sim.profile.dynamic_phase_breakdown`), asserting
both derivations agree within :data:`CHECK_TOLERANCE` — the same
cross-check pattern PR 2 established between spans and the legacy phase
counters.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import (
    mdtest_metrics,
    mdtest_metrics_traced,
    pick,
    register,
)
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP

OPS = ("create", "delete", "objstat", "dirstat")

#: Max relative disagreement between the metric-derived and
#: profiler-derived phase means (both fold the same begin/end pairs, so
#: the observed error is floating-point noise).
CHECK_TOLERANCE = 0.01


def _check_point(op: str, system_name: str, phases, spans,
                 checks: Table) -> None:
    """Assert the profiler re-derivation matches ``metrics`` phase means."""
    from repro.sim.profile import dynamic_phase_breakdown

    derived = dynamic_phase_breakdown(spans).get(op, {})
    for phase in (PHASE_LOOKUP, PHASE_EXECUTION):
        expected = phases[phase]
        got = derived.get(phase, 0.0)
        err = abs(got - expected) / max(abs(expected), 1e-9)
        if err > CHECK_TOLERANCE:
            raise RuntimeError(
                f"fig13 {op}/{system_name}: profiler-derived {phase} mean "
                f"{got:.3f}us diverges from metric {expected:.3f}us "
                f"({err:.2%} > {CHECK_TOLERANCE:.0%})")
        checks.add_row(op, system_name, phase, round(expected, 2),
                       round(got, 2), f"{err:.4%}")


@register("fig13", "Latency breakdown of object ops and directory reads",
          "Mantle's lookup latency 83.9-89.0%/80.0-84.2%/16.4-74.5% lower "
          "than Tectonic/InfiniFS/LocoFS")
def run(scale: str = "quick", check_profile: bool = False) -> List[Table]:
    clients = pick(scale, 64, 192)
    items = pick(scale, 12, 30)
    table = Table(
        "Figure 13: mean per-phase latency (us)",
        ["op", "system", "lookup", "execution", "total"])
    checks = Table(
        "Figure 13 profiler cross-check (phase means, us)",
        ["op", "system", "phase", "metric", "profiler", "rel err"])
    lookup_by = {}
    for op in OPS:
        for system_name in SYSTEMS:
            if check_profile:
                metrics, tracer = mdtest_metrics_traced(
                    system_name, op, clients=clients, items=items)
            else:
                metrics = mdtest_metrics(system_name, op, clients=clients,
                                         items=items)
            phases = metrics.phase_breakdown(op)
            if check_profile:
                _check_point(op, system_name, phases, tracer.spans, checks)
            lookup_by[(op, system_name)] = phases[PHASE_LOOKUP]
            table.add_row(op, system_name,
                          round(phases[PHASE_LOOKUP], 1),
                          round(phases[PHASE_EXECUTION], 1),
                          round(metrics.mean_latency_us(op), 1))
    reductions = Table(
        "Figure 13 (derived): Mantle lookup-latency reduction (%)",
        ["op", "vs tectonic", "vs infinifs", "vs locofs"])
    for op in OPS:
        row = [op]
        for other in ("tectonic", "infinifs", "locofs"):
            base = lookup_by[(op, other)]
            ours = lookup_by[(op, "mantle")]
            row.append(round(100 * (1 - ratio(ours, base)), 1) if base else 0)
        reductions.add_row(*row)
    reductions.add_note("paper ranges: 83.9-89.0 / 80.0-84.2 / 16.4-74.5; "
                        "LocoFS folds dir-op resolution into execution, so "
                        "its dirstat lookup column reads 0")
    tables = [table, reductions]
    if check_profile:
        checks.add_note(f"every phase mean re-derived from the dynamic "
                        f"span tree agrees within {CHECK_TOLERANCE:.0%}")
        tables.append(checks)
    return tables
