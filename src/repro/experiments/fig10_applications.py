"""Figure 10: completion time of real-world workloads.

Paper (metadata only, Fig 10a): in Analytics the contention on the shared
temporary/output directory dominates — Tectonic is 75 % slower than
InfiniFS, LocoFS improves on InfiniFS by 27 % yet stays 225 % above Mantle.
In Audio (conflict-free, resolution-bound) InfiniFS cuts Tectonic by 23.9 %
and Mantle cuts LocoFS by 40.8 %.

With data access enabled (Fig 10b): Mantle shortens Analytics completion by
73.2/93.3/63.3 % versus Tectonic/InfiniFS/LocoFS and Audio by
47.7/40.1/38.5 %.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table, ratio
from repro.experiments.base import app_metrics, pick, register
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.spark import SparkAnalyticsWorkload


def _workloads(scale: str):
    clients = pick(scale, 24, 64)
    return {
        "analytics": lambda: SparkAnalyticsWorkload(
            num_clients=clients, parts_per_task=pick(scale, 2, 4),
            rounds=pick(scale, 3, 6)),
        "audio": lambda: AudioPreprocessWorkload(
            num_clients=clients, segments=pick(scale, 8, 16), depth=11),
    }


@register("fig10", "Application completion time (Analytics + Audio)",
          "Mantle cuts completion by 63.3-93.3% (Analytics) and "
          "38.5-47.7% (Audio) vs baselines")
def run(scale: str = "quick") -> List[Table]:
    tables = []
    for data_access, label in ((False, "Figure 10a: metadata only"),
                               (True, "Figure 10b: with data access")):
        table = Table(label + " — completion time",
                      ["workload", "system", "completion ms",
                       "vs mantle", "retries"])
        for workload_name, factory in _workloads(scale).items():
            results = {}
            retries = {}
            for system_name in SYSTEMS:
                metrics = app_metrics(system_name, factory(),
                                      data_access=data_access)
                results[system_name] = metrics.duration_us / 1000.0
                retries[system_name] = metrics.retries
            for system_name in SYSTEMS:
                table.add_row(
                    workload_name, system_name,
                    round(results[system_name], 2),
                    round(ratio(results[system_name], results["mantle"]), 2),
                    retries[system_name])
        table.add_note("'vs mantle' is the completion-time ratio; paper "
                       "reports Mantle fastest in every cell")
        tables.append(table)
    return tables
