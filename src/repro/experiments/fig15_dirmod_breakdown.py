"""Figure 15: latency breakdown of directory modifications.

Paper: Tectonic slightly better execution / InfiniFS slightly better lookup
in mkdir-e; loop detection appears only for dirrename and only in
InfiniFS/LocoFS/Mantle (relaxed Tectonic skips it); Mantle records zero
lookup time in dirrename because resolution is merged with loop detection.

Since PR 2 the numbers are derived from the span tracer
(:mod:`repro.sim.trace`) rather than the ``OpContext`` phase counters: each
case runs traced, and the table aggregates ``phase``-category spans under
each successful operation's root span.  The legacy counters still exist (the
phase API is a shim over spans) and ``mantle-exp trace fig15`` cross-checks
both derivations agree within 1%.

``--check-profile`` adds a third, independent derivation: the cost
profiler's *dynamic* span tree
(:func:`repro.sim.profile.dynamic_phase_breakdown`, keyed on
``dyn_parent_id`` rather than the declared ``parent_id``) must reproduce
the same phase means within :data:`CHECK_TOLERANCE`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_traced, pick, register
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP, PHASE_LOOP_DETECT
from repro.sim.trace import aggregate_ops

CASES = (("mkdir", "exclusive"), ("mkdir", "shared"),
         ("dirrename", "exclusive"), ("dirrename", "shared"))

#: Max relative disagreement between the span-derived columns and the
#: profiler's dynamic-tree re-derivation.
CHECK_TOLERANCE = 0.01


def check_profile_table(artifacts: List[Dict]) -> Table:
    """Re-derive every case's phase means from the dynamic span tree.

    Raises ``RuntimeError`` on the first case where the profiler's
    derivation diverges from the declared-tree aggregation by more than
    :data:`CHECK_TOLERANCE`.
    """
    from repro.sim.profile import dynamic_phase_breakdown

    checks = Table(
        "Figure 15 profiler cross-check (phase means, us)",
        ["case", "phase", "span-derived", "profiler", "rel err"])
    for artifact in artifacts:
        op = artifact["op"]
        agg = aggregate_ops(artifact["tracer"].spans)[op]
        derived = dynamic_phase_breakdown(
            artifact["tracer"].spans).get(op, {})
        for phase in (PHASE_LOOKUP, PHASE_LOOP_DETECT, PHASE_EXECUTION):
            expected = agg.mean_phase_us(phase)
            got = derived.get(phase, 0.0)
            err = abs(got - expected) / max(abs(expected), 1e-9)
            if err > CHECK_TOLERANCE:
                raise RuntimeError(
                    f"fig15 {artifact['label']}: profiler-derived {phase} "
                    f"mean {got:.3f}us diverges from span-derived "
                    f"{expected:.3f}us ({err:.2%} > "
                    f"{CHECK_TOLERANCE:.0%})")
            checks.add_row(artifact["label"], phase, round(expected, 2),
                           round(got, 2), f"{err:.4%}")
    checks.add_note(f"declared-tree aggregation vs dynamic-tree "
                    f"re-derivation agree within {CHECK_TOLERANCE:.0%} "
                    f"for every case")
    return checks


def run_traced(scale: str = "quick") -> Tuple[List[Table], List[Dict]]:
    """Run every case traced; returns (tables, per-case artifacts).

    Each artifact dict carries the case label, the op, the
    :class:`~repro.sim.stats.MetricSet` and the live tracer, so
    ``mantle-exp trace fig15`` can export the spans and cross-validate the
    two derivations without re-running anything.
    """
    clients = pick(scale, 48, 128)
    items = pick(scale, 8, 20)
    table = Table(
        "Figure 15: mean per-phase latency (us, span-derived)",
        ["case", "system", "lookup", "loop detect", "execution", "total"])
    artifacts: List[Dict] = []
    for op, mode in CASES:
        suffix = "-s" if mode == "shared" else "-e"
        for system_name in SYSTEMS:
            metrics, tracer = mdtest_metrics_traced(
                system_name, op, mode=mode, clients=clients, items=items)
            agg = aggregate_ops(tracer.spans).get(op)
            if agg is None or not agg.count:
                raise RuntimeError(
                    f"no successful {op!r} spans for {system_name}")
            table.add_row(
                f"{op}{suffix}", system_name,
                round(agg.mean_phase_us(PHASE_LOOKUP), 1),
                round(agg.mean_phase_us(PHASE_LOOP_DETECT), 1),
                round(agg.mean_phase_us(PHASE_EXECUTION), 1),
                round(agg.mean_latency_us, 1))
            artifacts.append({
                "label": f"{op}{suffix}/{system_name}",
                "op": op,
                "metrics": metrics,
                "tracer": tracer,
            })
    table.add_note("Mantle dirrename: lookup column is 0 by construction "
                   "(merged with loop detection); Tectonic has no loop "
                   "detection (relaxed consistency)")
    return [table], artifacts


@register("fig15", "Latency breakdown of directory modifications",
          "loop detection only for renames (not Tectonic); Mantle merges "
          "rename lookup into loop detection")
def run(scale: str = "quick", check_profile: bool = False) -> List[Table]:
    tables, artifacts = run_traced(scale)
    if check_profile:
        tables.append(check_profile_table(artifacts))
    return tables
