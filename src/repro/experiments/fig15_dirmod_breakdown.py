"""Figure 15: latency breakdown of directory modifications.

Paper: Tectonic slightly better execution / InfiniFS slightly better lookup
in mkdir-e; loop detection appears only for dirrename and only in
InfiniFS/LocoFS/Mantle (relaxed Tectonic skips it); Mantle records zero
lookup time in dirrename because resolution is merged with loop detection.

Since PR 2 the numbers are derived from the span tracer
(:mod:`repro.sim.trace`) rather than the ``OpContext`` phase counters: each
case runs traced, and the table aggregates ``phase``-category spans under
each successful operation's root span.  The legacy counters still exist (the
phase API is a shim over spans) and ``mantle-exp trace fig15`` cross-checks
both derivations agree within 1%.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics_traced, pick, register
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP, PHASE_LOOP_DETECT
from repro.sim.trace import aggregate_ops

CASES = (("mkdir", "exclusive"), ("mkdir", "shared"),
         ("dirrename", "exclusive"), ("dirrename", "shared"))


def run_traced(scale: str = "quick") -> Tuple[List[Table], List[Dict]]:
    """Run every case traced; returns (tables, per-case artifacts).

    Each artifact dict carries the case label, the op, the
    :class:`~repro.sim.stats.MetricSet` and the live tracer, so
    ``mantle-exp trace fig15`` can export the spans and cross-validate the
    two derivations without re-running anything.
    """
    clients = pick(scale, 48, 128)
    items = pick(scale, 8, 20)
    table = Table(
        "Figure 15: mean per-phase latency (us, span-derived)",
        ["case", "system", "lookup", "loop detect", "execution", "total"])
    artifacts: List[Dict] = []
    for op, mode in CASES:
        suffix = "-s" if mode == "shared" else "-e"
        for system_name in SYSTEMS:
            metrics, tracer = mdtest_metrics_traced(
                system_name, op, mode=mode, clients=clients, items=items)
            agg = aggregate_ops(tracer.spans).get(op)
            if agg is None or not agg.count:
                raise RuntimeError(
                    f"no successful {op!r} spans for {system_name}")
            table.add_row(
                f"{op}{suffix}", system_name,
                round(agg.mean_phase_us(PHASE_LOOKUP), 1),
                round(agg.mean_phase_us(PHASE_LOOP_DETECT), 1),
                round(agg.mean_phase_us(PHASE_EXECUTION), 1),
                round(agg.mean_latency_us, 1))
            artifacts.append({
                "label": f"{op}{suffix}/{system_name}",
                "op": op,
                "metrics": metrics,
                "tracer": tracer,
            })
    table.add_note("Mantle dirrename: lookup column is 0 by construction "
                   "(merged with loop detection); Tectonic has no loop "
                   "detection (relaxed consistency)")
    return [table], artifacts


@register("fig15", "Latency breakdown of directory modifications",
          "loop detection only for renames (not Tectonic); Mantle merges "
          "rename lookup into loop detection")
def run(scale: str = "quick") -> List[Table]:
    tables, _artifacts = run_traced(scale)
    return tables
