"""Figure 15: latency breakdown of directory modifications.

Paper: Tectonic slightly better execution / InfiniFS slightly better lookup
in mkdir-e; loop detection appears only for dirrename and only in
InfiniFS/LocoFS/Mantle (relaxed Tectonic skips it); Mantle records zero
lookup time in dirrename because resolution is merged with loop detection.
"""

from __future__ import annotations

from typing import List

from repro.bench.cluster import SYSTEMS
from repro.bench.report import Table
from repro.experiments.base import mdtest_metrics, pick, register
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP, PHASE_LOOP_DETECT

CASES = (("mkdir", "exclusive"), ("mkdir", "shared"),
         ("dirrename", "exclusive"), ("dirrename", "shared"))


@register("fig15", "Latency breakdown of directory modifications",
          "loop detection only for renames (not Tectonic); Mantle merges "
          "rename lookup into loop detection")
def run(scale: str = "quick") -> List[Table]:
    clients = pick(scale, 48, 128)
    items = pick(scale, 8, 20)
    table = Table(
        "Figure 15: mean per-phase latency (us)",
        ["case", "system", "lookup", "loop detect", "execution", "total"])
    for op, mode in CASES:
        suffix = "-s" if mode == "shared" else "-e"
        for system_name in SYSTEMS:
            metrics = mdtest_metrics(system_name, op, mode=mode,
                                     clients=clients, items=items)
            phases = metrics.phase_breakdown(op)
            table.add_row(
                f"{op}{suffix}", system_name,
                round(phases[PHASE_LOOKUP], 1),
                round(phases[PHASE_LOOP_DETECT], 1),
                round(phases[PHASE_EXECUTION], 1),
                round(metrics.mean_latency_us(op), 1))
    table.add_note("Mantle dirrename: lookup column is 0 by construction "
                   "(merged with loop detection); Tectonic has no loop "
                   "detection (relaxed consistency)")
    return [table]
