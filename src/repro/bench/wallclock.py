"""Wall-clock regression harness for the DES kernel and the quick suite.

``python -m repro.bench.wallclock`` times four kernel micro-benchmarks
(events per wall-second) plus the quick experiment suite and writes
``BENCH_wallclock.json`` at the repository root so successive PRs can track
the substrate's trajectory.  All numbers are *wall-clock* — simulated
results are covered by the determinism tests, not this file.

The microbenches mirror ``benchmarks/bench_simulator.py`` but run without
pytest so they can execute in CI and inside the JSON harness:

* ``timeout_churn``      — many processes sleeping in short timeouts
  (heap-dominated; the classic DES inner loop).
* ``immediate_resume``   — processes yielding already-processed events
  (exercises the deferred-callback microtask fast path).
* ``resource_pingpong``  — uncontended ``Resource`` request/release plus
  ``Store`` put/get ping-pong (zero-delay event fast path).
* ``anyof_fanout``       — ``AnyOf`` over 64 children (O(1) index map).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.core import AnyOf, Simulator
from repro.sim.resources import Resource, Store
from repro.sim.telemetry import NULL_TELEMETRY
from repro.sim.trace import NULL_TRACER


def _untraced_sim() -> Simulator:
    """A simulator with tracing and telemetry explicitly off.

    The kernel numbers gate the "zero cost when off" contract of the span
    tracer and the telemetry registry, so they must not silently inherit
    ``MANTLE_TRACE`` / ``MANTLE_TELEMETRY`` from the environment.
    """
    return Simulator(tracer=NULL_TRACER, telemetry=NULL_TELEMETRY)

#: Repository root (src/repro/bench/wallclock.py -> repo root).
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_wallclock.json")


# ---------------------------------------------------------------------------
# Kernel microbenches.  Each returns (events_processed, wall_seconds).
# ---------------------------------------------------------------------------

def bench_timeout_churn(procs: int = 400, steps: int = 50) -> Tuple[int, float]:
    sim = _untraced_sim()

    def worker(i):
        for _ in range(steps):
            yield sim.timeout(1)

    for i in range(procs):
        sim.process(worker(i))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return procs * steps, elapsed


def bench_immediate_resume(procs: int = 200, steps: int = 100) -> Tuple[int, float]:
    sim = _untraced_sim()
    done = sim.event()
    done.succeed("ready")
    sim.run()  # process `done` so every yield hits the resume-immediately path

    def worker():
        for _ in range(steps):
            yield done

    for _ in range(procs):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return procs * steps, elapsed


def bench_resource_pingpong(rounds: int = 5000) -> Tuple[int, float]:
    sim = _untraced_sim()
    cpu = Resource(sim, capacity=2)
    store = Store(sim)

    def producer():
        for i in range(rounds):
            req = cpu.request()
            yield req
            cpu.release(req)
            store.put(i)

    def consumer():
        for _ in range(rounds):
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return rounds * 2, elapsed


def bench_anyof_fanout(rounds: int = 300, fanout: int = 64) -> Tuple[int, float]:
    sim = _untraced_sim()

    def waiter():
        for r in range(rounds):
            children = [sim.timeout(1 + (i % 7), i) for i in range(fanout)]
            yield AnyOf(sim, children)

    sim.process(waiter())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return rounds * fanout, elapsed


KERNEL_BENCHES: Dict[str, Callable[[], Tuple[int, float]]] = {
    "timeout_churn": bench_timeout_churn,
    "immediate_resume": bench_immediate_resume,
    "resource_pingpong": bench_resource_pingpong,
    "anyof_fanout": bench_anyof_fanout,
}

#: events/s measured on the pre-fast-path kernel (commit d75c5b3, the same
#: single-core container that produced ``results_quick.txt``).  Kept here so
#: every report carries its own before/after ratio.
SEED_BASELINE_EVENTS_PER_S: Dict[str, float] = {
    "timeout_churn": 560750.0,
    "immediate_resume": 689735.1,
    "resource_pingpong": 462163.2,
    "anyof_fanout": 653571.1,
}

#: events/s after the PR-1 kernel fast paths (commit f469610, same
#: container).  The span-tracing PR must keep the untraced kernel within
#: 10% of these — ``--assert-vs-pr1 0.10`` is the CI gate.
PR1_BASELINE_EVENTS_PER_S: Dict[str, float] = {
    "timeout_churn": 749547.5,
    "immediate_resume": 3520764.8,
    "resource_pingpong": 995616.6,
    "anyof_fanout": 860920.9,
}

#: events/s at the end of PR-2 (commit 740041e, span tracing merged; same
#: container, repeats=5).  The telemetry PR must keep the instrumented-but-
#: off kernel within 5% of these — ``--assert-vs-pr2 0.05`` is the CI gate.
PR2_BASELINE_EVENTS_PER_S: Dict[str, float] = {
    "timeout_churn": 730290.7,
    "immediate_resume": 3061237.8,
    "resource_pingpong": 961945.5,
    "anyof_fanout": 737417.1,
}

#: events/s at the end of PR-3 (commit ce2e389, windowed telemetry merged;
#: same container, repeats=5).  The profiler PR must keep the
#: instrumentation-off kernel within 5% of these — ``--assert-vs-pr3 0.05``
#: is the CI gate.
PR3_BASELINE_EVENTS_PER_S: Dict[str, float] = {
    "timeout_churn": 774775.0,
    "immediate_resume": 3450628.0,
    "resource_pingpong": 967781.0,
    "anyof_fanout": 841207.0,
}

#: events/s at the end of PR-4 (commit caa6636, cost profiler merged; same
#: container, repeats=5).  The critical-path PR must keep the
#: instrumentation-off kernel within 5% of these — ``--assert-vs-pr4 0.05``
#: (a 0.95x geomean floor) is the CI gate.
PR4_BASELINE_EVENTS_PER_S: Dict[str, float] = {
    "timeout_churn": 642692.0,
    "immediate_resume": 3241944.0,
    "resource_pingpong": 887545.0,
    "anyof_fanout": 831125.0,
}


def run_kernel_benches(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every kernel microbench, keeping the best of ``repeats`` runs."""
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in KERNEL_BENCHES.items():
        best_rate = 0.0
        events = 0
        best_elapsed = float("inf")
        for _ in range(repeats):
            events, elapsed = fn()
            rate = events / elapsed if elapsed > 0 else 0.0
            if rate > best_rate:
                best_rate = rate
                best_elapsed = elapsed
        results[name] = {
            "events": events,
            "wall_s": round(best_elapsed, 6),
            "events_per_s": round(best_rate, 1),
        }
        seed = SEED_BASELINE_EVENTS_PER_S.get(name)
        if seed:
            results[name]["speedup_vs_seed"] = round(best_rate / seed, 3)
        pr1 = PR1_BASELINE_EVENTS_PER_S.get(name)
        if pr1:
            results[name]["speedup_vs_pr1"] = round(best_rate / pr1, 3)
        pr2 = PR2_BASELINE_EVENTS_PER_S.get(name)
        if pr2:
            results[name]["speedup_vs_pr2"] = round(best_rate / pr2, 3)
        pr3 = PR3_BASELINE_EVENTS_PER_S.get(name)
        if pr3:
            results[name]["speedup_vs_pr3"] = round(best_rate / pr3, 3)
        pr4 = PR4_BASELINE_EVENTS_PER_S.get(name)
        if pr4:
            results[name]["speedup_vs_pr4"] = round(best_rate / pr4, 3)
    return results


def _geomean(ratios: List[float]) -> float:
    if not ratios:
        return 0.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))


def geomean_speedup(kernel: Dict[str, Dict[str, float]],
                    key: str = "speedup_vs_seed") -> float:
    return _geomean([row[key] for row in kernel.values() if key in row])


# ---------------------------------------------------------------------------
# Tracing overhead: the same metadata workload traced vs untraced.
# ---------------------------------------------------------------------------

def measure_tracing_overhead(clients: int = 24,
                             items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of span tracing on one mdtest mkdir run on Mantle.

    The kernel microbenches never cross an instrumentation site, so this is
    the number that actually measures the tracer: the identical workload
    with the null tracer and with a live :class:`~repro.sim.trace.Tracer`.
    The simulated results are identical either way (pinned by the
    determinism tests); only wall-clock and the span count differ.
    """
    from repro.experiments.base import mdtest_metrics, mdtest_metrics_traced

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    untraced_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer = mdtest_metrics_traced("mantle", "mkdir", clients=clients,
                                      items=items)
    traced_s = time.perf_counter() - start
    return {
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_ratio": round(traced_s / untraced_s, 3) if untraced_s
        else 0.0,
        "spans": len(tracer.spans),
    }


def measure_profiling_overhead(clients: int = 24,
                               items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of cost-attribution profiling on one mdtest run.

    Profiling = span tracing + per-process span stacks + cost charges +
    the telemetry busy counters the reconciliation check needs, i.e. the
    full ``mantle-exp profile`` instrumentation, against the identical
    uninstrumented workload.  The simulated results are bit-identical
    either way (pinned by the determinism tests); this also times the
    profile fold itself.
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_profiled)
    from repro.sim.profile import profile_from_tracer

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer, _ = mdtest_metrics_profiled("mantle", "mkdir",
                                           clients=clients, items=items)
    profile = profile_from_tracer(tracer)
    on_s = time.perf_counter() - start
    return {
        "profiling_off_s": round(off_s, 4),
        "profiling_on_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "spans": profile.span_count,
        "centers": len(profile.centers),
    }


def measure_telemetry_overhead(clients: int = 24,
                               items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of windowed telemetry on one mdtest mkdir run.

    Same shape as :func:`measure_tracing_overhead`: the identical workload
    with telemetry off and with a live
    :class:`~repro.sim.telemetry.Telemetry` registry.  The simulated
    results are bit-identical either way (pinned by the determinism
    tests); only wall-clock and the instrument count differ.
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_telemetry)

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, telemetry, _ = mdtest_metrics_telemetry("mantle", "mkdir",
                                               clients=clients, items=items)
    on_s = time.perf_counter() - start
    return {
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "instruments": len(telemetry.instruments()),
    }


def measure_critpath_overhead(clients: int = 24,
                              items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of critical-path extraction on one mdtest run.

    The instrumentation is the same as profiling (span tree + charges +
    blocked edges); what this times on top is the extraction itself —
    :func:`~repro.sim.critpath.critpath_from_tracer` plus the
    profile-contrast fold, i.e. everything ``mantle-exp critpath`` does
    after the simulation finishes.  The simulated results are
    bit-identical to the uninstrumented run (pinned by the determinism
    tests).
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_profiled)
    from repro.sim.critpath import (contrast_with_profile,
                                    critpath_from_tracer)
    from repro.sim.profile import profile_from_tracer

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer, _ = mdtest_metrics_profiled("mantle", "mkdir",
                                           clients=clients, items=items)
    sim_s = time.perf_counter() - start
    start = time.perf_counter()
    crit = critpath_from_tracer(tracer)
    contrast = contrast_with_profile(crit, profile_from_tracer(tracer))
    extract_s = time.perf_counter() - start
    on_s = sim_s + extract_s
    return {
        "critpath_off_s": round(off_s, 4),
        "critpath_on_s": round(on_s, 4),
        "extract_s": round(extract_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "ops": crit.ops,
        "centers": len(crit.gated),
        "contrast_rows": len(contrast),
    }


# ---------------------------------------------------------------------------
# Quick experiment suite timing.
# ---------------------------------------------------------------------------

def time_quick_suite(jobs: int = 1,
                     experiments: Optional[List[str]] = None) -> Dict[str, object]:
    """Time ``mantle-exp all --scale quick`` (optionally a subset) end to end."""
    from repro.experiments.runner import run_experiments

    start = time.perf_counter()
    outcomes = run_experiments(experiments, scale="quick", jobs=jobs,
                               quiet=True)
    elapsed = time.perf_counter() - start
    return {
        "jobs": jobs,
        "wall_s": round(elapsed, 3),
        "per_experiment_s": {o.exp_id: round(o.wall_s, 3) for o in outcomes},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.wallclock",
        description="Wall-clock regression harness (kernel + quick suite)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--skip-suite", action="store_true",
                        help="only run the kernel microbenches")
    parser.add_argument("--suite-jobs", type=int, default=None, metavar="N",
                        help="additionally time the quick suite with N workers")
    parser.add_argument("--experiments", nargs="*", default=None,
                        help="subset of experiment ids for the suite timing")
    parser.add_argument("--repeats", type=int, default=3,
                        help="microbench repetitions (best-of)")
    parser.add_argument("--assert-vs-pr1", type=float, default=None,
                        metavar="FRAC",
                        help="fail if the untraced kernel geomean drops more "
                             "than FRAC (e.g. 0.10) below the PR-1 baseline")
    parser.add_argument("--assert-vs-pr2", type=float, default=None,
                        metavar="FRAC",
                        help="fail if the telemetry-off kernel geomean drops "
                             "more than FRAC (e.g. 0.05) below the PR-2 "
                             "baseline")
    parser.add_argument("--assert-vs-pr3", type=float, default=None,
                        metavar="FRAC",
                        help="fail if the instrumentation-off kernel geomean "
                             "drops more than FRAC (e.g. 0.05) below the "
                             "PR-3 baseline")
    parser.add_argument("--assert-vs-pr4", type=float, default=None,
                        metavar="FRAC",
                        help="fail if the instrumentation-off kernel geomean "
                             "drops more than FRAC (e.g. 0.05, a 0.95x "
                             "floor) below the PR-4 baseline")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the traced-vs-untraced workload timing")
    args = parser.parse_args(argv)

    report: Dict[str, object] = {
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "kernel": run_kernel_benches(repeats=args.repeats),
    }
    for name, row in report["kernel"].items():
        speedup = row.get("speedup_vs_seed")
        suffix = f"  {speedup:.2f}x vs seed" if speedup else ""
        print(f"kernel/{name:18s} {row['events_per_s']:>12,.0f} events/s "
              f"({row['wall_s']:.3f}s){suffix}")
    report["kernel_geomean_speedup_vs_seed"] = round(
        geomean_speedup(report["kernel"]), 3)
    print(f"kernel geomean speedup vs seed: "
          f"{report['kernel_geomean_speedup_vs_seed']:.2f}x")
    geomean_pr1 = round(
        geomean_speedup(report["kernel"], key="speedup_vs_pr1"), 3)
    report["kernel_geomean_speedup_vs_pr1"] = geomean_pr1
    print(f"kernel geomean speedup vs PR-1: {geomean_pr1:.2f}x")
    geomean_pr2 = round(
        geomean_speedup(report["kernel"], key="speedup_vs_pr2"), 3)
    report["kernel_geomean_speedup_vs_pr2"] = geomean_pr2
    print(f"kernel geomean speedup vs PR-2: {geomean_pr2:.2f}x")
    geomean_pr3 = round(
        geomean_speedup(report["kernel"], key="speedup_vs_pr3"), 3)
    report["kernel_geomean_speedup_vs_pr3"] = geomean_pr3
    print(f"kernel geomean speedup vs PR-3: {geomean_pr3:.2f}x")
    geomean_pr4 = round(
        geomean_speedup(report["kernel"], key="speedup_vs_pr4"), 3)
    report["kernel_geomean_speedup_vs_pr4"] = geomean_pr4
    print(f"kernel geomean speedup vs PR-4: {geomean_pr4:.2f}x")

    failed = False
    if args.assert_vs_pr1 is not None:
        floor = 1.0 - args.assert_vs_pr1
        if geomean_pr1 < floor:
            print(f"FAIL: kernel geomean {geomean_pr1:.3f}x vs PR-1 is "
                  f"below the {floor:.2f}x floor "
                  f"(>{args.assert_vs_pr1:.0%} regression)", file=sys.stderr)
            failed = True
        else:
            print(f"assert-vs-pr1 OK: {geomean_pr1:.3f}x >= {floor:.2f}x")
    if args.assert_vs_pr2 is not None:
        floor = 1.0 - args.assert_vs_pr2
        if geomean_pr2 < floor:
            print(f"FAIL: kernel geomean {geomean_pr2:.3f}x vs PR-2 is "
                  f"below the {floor:.2f}x floor "
                  f"(>{args.assert_vs_pr2:.0%} regression)", file=sys.stderr)
            failed = True
        else:
            print(f"assert-vs-pr2 OK: {geomean_pr2:.3f}x >= {floor:.2f}x")
    if args.assert_vs_pr3 is not None:
        floor = 1.0 - args.assert_vs_pr3
        if geomean_pr3 < floor:
            print(f"FAIL: kernel geomean {geomean_pr3:.3f}x vs PR-3 is "
                  f"below the {floor:.2f}x floor "
                  f"(>{args.assert_vs_pr3:.0%} regression)", file=sys.stderr)
            failed = True
        else:
            print(f"assert-vs-pr3 OK: {geomean_pr3:.3f}x >= {floor:.2f}x")
    if args.assert_vs_pr4 is not None:
        floor = 1.0 - args.assert_vs_pr4
        if geomean_pr4 < floor:
            print(f"FAIL: kernel geomean {geomean_pr4:.3f}x vs PR-4 is "
                  f"below the {floor:.2f}x floor "
                  f"(>{args.assert_vs_pr4:.0%} regression)", file=sys.stderr)
            failed = True
        else:
            print(f"assert-vs-pr4 OK: {geomean_pr4:.3f}x >= {floor:.2f}x")

    if not args.skip_overhead:
        overhead = measure_tracing_overhead()
        report["tracing_overhead"] = overhead
        print(f"tracing overhead      {overhead['overhead_ratio']:.2f}x wall "
              f"({overhead['untraced_s']:.2f}s -> {overhead['traced_s']:.2f}s,"
              f" {overhead['spans']} spans)")
        telemetry_cost = measure_telemetry_overhead()
        report["telemetry_overhead"] = telemetry_cost
        print(f"telemetry overhead    "
              f"{telemetry_cost['overhead_ratio']:.2f}x wall "
              f"({telemetry_cost['telemetry_off_s']:.2f}s -> "
              f"{telemetry_cost['telemetry_on_s']:.2f}s, "
              f"{telemetry_cost['instruments']} instruments)")
        profiling_cost = measure_profiling_overhead()
        report["profiling_overhead"] = profiling_cost
        print(f"profiling overhead    "
              f"{profiling_cost['overhead_ratio']:.2f}x wall "
              f"({profiling_cost['profiling_off_s']:.2f}s -> "
              f"{profiling_cost['profiling_on_s']:.2f}s, "
              f"{profiling_cost['spans']} spans, "
              f"{profiling_cost['centers']} centers)")
        critpath_cost = measure_critpath_overhead()
        report["critpath_overhead"] = critpath_cost
        print(f"critpath overhead     "
              f"{critpath_cost['overhead_ratio']:.2f}x wall "
              f"({critpath_cost['critpath_off_s']:.2f}s -> "
              f"{critpath_cost['critpath_on_s']:.2f}s, extraction "
              f"{critpath_cost['extract_s']:.3f}s over "
              f"{critpath_cost['ops']} ops, "
              f"{critpath_cost['centers']} centers)")

    if not args.skip_suite:
        suite: Dict[str, object] = {"serial": time_quick_suite(
            jobs=1, experiments=args.experiments)}
        print(f"suite/serial          {suite['serial']['wall_s']:.1f}s wall")
        if args.suite_jobs and args.suite_jobs > 1:
            suite[f"jobs{args.suite_jobs}"] = time_quick_suite(
                jobs=args.suite_jobs, experiments=args.experiments)
            print(f"suite/jobs{args.suite_jobs}          "
                  f"{suite[f'jobs{args.suite_jobs}']['wall_s']:.1f}s wall")
        report["quick_suite"] = suite

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"(wrote {args.output})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
