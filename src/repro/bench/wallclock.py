"""Wall-clock regression harness for the DES kernel and the quick suite.

``python -m repro.bench.wallclock`` times four kernel micro-benchmarks
(events per wall-second) plus the quick experiment suite and writes
``BENCH_wallclock.json`` at the repository root so successive PRs can track
the substrate's trajectory.  All numbers are *wall-clock* — simulated
results are covered by the determinism tests, not this file.

The microbenches mirror ``benchmarks/bench_simulator.py`` but run without
pytest so they can execute in CI and inside the JSON harness:

* ``timeout_churn``      — many processes sleeping in short timeouts
  (heap-dominated; the classic DES inner loop).
* ``immediate_resume``   — processes yielding already-processed events
  (exercises the deferred-callback microtask fast path).
* ``resource_pingpong``  — uncontended ``Resource`` request/release plus
  ``Store`` put/get ping-pong (zero-delay event fast path).
* ``anyof_fanout``       — ``AnyOf`` over 64 children (O(1) index map).

The *multi-host* benches below them measure the lane-sharded kernel where
it matters — many hosts, RPC-heavy, thousands of pending timers — by
running the identical topology with lanes off and on and reporting the
ratio.

Baselines live as one JSON file per recorded revision under
``src/repro/bench/baselines/``; ``--assert-vs REV`` gates the current
geomean against any of them and ``--save-baseline REV`` records a new one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.core import AllOf, AnyOf, Simulator
from repro.sim.host import Host
from repro.sim.network import Network, Server
from repro.sim.resources import Resource, Store
from repro.sim.telemetry import NULL_TELEMETRY
from repro.sim.trace import NULL_TRACER

#: Kernel selector -> Simulator kwargs.  "fast" is the default two-tier
#: scheduler, "legacy" the original all-heap loop, "lanes" the per-host
#: lane-sharded kernel.  All three produce bit-identical simulated results.
KERNELS: Dict[str, Dict[str, object]] = {
    "fast": {"fast_paths": True, "lanes": 0},
    "legacy": {"fast_paths": False, "lanes": 0},
    "lanes": {"fast_paths": True, "lanes": True},
}


def _untraced_sim(kernel: str = "fast") -> Simulator:
    """A simulator with tracing and telemetry explicitly off.

    The kernel numbers gate the "zero cost when off" contract of the span
    tracer and the telemetry registry, so they must not silently inherit
    ``MANTLE_TRACE`` / ``MANTLE_TELEMETRY`` from the environment; the
    explicit kernel kwargs likewise shield ``MANTLE_SIM_FAST`` /
    ``MANTLE_SIM_LANES``.
    """
    return Simulator(tracer=NULL_TRACER, telemetry=NULL_TELEMETRY,
                     **KERNELS[kernel])

#: Repository root (src/repro/bench/wallclock.py -> repo root).
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_wallclock.json")

# ---------------------------------------------------------------------------
# Baseline history: one JSON document per recorded revision.
# ---------------------------------------------------------------------------

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


def list_baselines() -> List[str]:
    """Recorded revisions, oldest first (by each file's ``order`` field)."""
    docs = []
    for entry in os.listdir(BASELINE_DIR):
        if entry.endswith(".json"):
            with open(os.path.join(BASELINE_DIR, entry)) as handle:
                doc = json.load(handle)
            docs.append((doc.get("order", 0), doc["rev"]))
    return [rev for _order, rev in sorted(docs)]


def load_baseline(rev: str) -> Dict[str, object]:
    path = os.path.join(BASELINE_DIR, rev + ".json")
    if not os.path.exists(path):
        known = ", ".join(list_baselines())
        raise KeyError(f"no baseline {rev!r}; recorded revisions: {known}")
    with open(path) as handle:
        return json.load(handle)


def save_baseline(rev: str, kernel_results: Dict[str, Dict[str, float]],
                  commit: str = "", note: str = "",
                  kernel: str = "fast") -> str:
    """Record ``kernel_results`` as baseline ``rev`` (merging with an
    existing file so fast and legacy numbers can be recorded separately)."""
    path = os.path.join(BASELINE_DIR, rev + ".json")
    if os.path.exists(path):
        with open(path) as handle:
            doc = json.load(handle)
    else:
        existing = list_baselines()
        last = load_baseline(existing[-1])["order"] if existing else -1
        doc = {"rev": rev, "order": last + 1}
    if commit:
        doc["commit"] = commit
    if note:
        doc["note"] = note
    key = ("legacy_kernel_events_per_s" if kernel == "legacy"
           else "kernel_events_per_s")
    doc[key] = {name: row["events_per_s"]
                for name, row in kernel_results.items()}
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _baseline_rates(rev: str, kernel: str) -> Dict[str, float]:
    """The recorded rates comparable to a ``kernel`` run of this revision.

    The lane kernel compares against the recorded fast-kernel rates: on
    single-host microbenches that ratio *is* the lane overhead, and on the
    multi-host benches the lane win is measured directly instead.
    """
    doc = load_baseline(rev)
    if kernel == "legacy":
        return doc.get("legacy_kernel_events_per_s", {})
    return doc.get("kernel_events_per_s", {})


# ---------------------------------------------------------------------------
# Kernel microbenches.  Each returns (events_processed, wall_seconds).
# ---------------------------------------------------------------------------

def bench_timeout_churn(procs: int = 400, steps: int = 50,
                        kernel: str = "fast") -> Tuple[int, float]:
    sim = _untraced_sim(kernel)

    def worker(i):
        for _ in range(steps):
            yield sim.timeout(1)

    for i in range(procs):
        sim.process(worker(i))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return procs * steps, elapsed


def bench_immediate_resume(procs: int = 200, steps: int = 100,
                           kernel: str = "fast") -> Tuple[int, float]:
    sim = _untraced_sim(kernel)
    done = sim.event()
    done.succeed("ready")
    sim.run()  # process `done` so every yield hits the resume-immediately path

    def worker():
        for _ in range(steps):
            yield done

    for _ in range(procs):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return procs * steps, elapsed


def bench_resource_pingpong(rounds: int = 5000,
                            kernel: str = "fast") -> Tuple[int, float]:
    sim = _untraced_sim(kernel)
    cpu = Resource(sim, capacity=2)
    store = Store(sim)

    def producer():
        for i in range(rounds):
            req = cpu.request()
            yield req
            cpu.release(req)
            store.put(i)

    def consumer():
        for _ in range(rounds):
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return rounds * 2, elapsed


def bench_anyof_fanout(rounds: int = 300, fanout: int = 64,
                       kernel: str = "fast") -> Tuple[int, float]:
    sim = _untraced_sim(kernel)

    def waiter():
        for r in range(rounds):
            children = [sim.timeout(1 + (i % 7), i) for i in range(fanout)]
            yield AnyOf(sim, children)

    sim.process(waiter())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return rounds * fanout, elapsed


KERNEL_BENCHES: Dict[str, Callable[..., Tuple[int, float]]] = {
    "timeout_churn": bench_timeout_churn,
    "immediate_resume": bench_immediate_resume,
    "resource_pingpong": bench_resource_pingpong,
    "anyof_fanout": bench_anyof_fanout,
}


def run_kernel_benches(repeats: int = 3,
                       kernel: str = "fast") -> Dict[str, Dict[str, float]]:
    """Run every kernel microbench on ``kernel``, best of ``repeats`` runs,
    annotated with ``speedup_vs_<rev>`` against every recorded baseline."""
    history = [(rev, _baseline_rates(rev, kernel))
               for rev in list_baselines()]
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in KERNEL_BENCHES.items():
        best_rate = 0.0
        events = 0
        best_elapsed = float("inf")
        for _ in range(repeats):
            events, elapsed = fn(kernel=kernel)
            rate = events / elapsed if elapsed > 0 else 0.0
            if rate > best_rate:
                best_rate = rate
                best_elapsed = elapsed
        results[name] = {
            "events": events,
            "wall_s": round(best_elapsed, 6),
            "events_per_s": round(best_rate, 1),
        }
        for rev, rates in history:
            recorded = rates.get(name)
            if recorded:
                results[name]["speedup_vs_" + rev] = round(
                    best_rate / recorded, 3)
    return results


# ---------------------------------------------------------------------------
# Multi-host benches: the lane kernel's home turf.  Each builds a topology
# shaped like a real deployment — many hosts, a large standing population of
# armed timers, and traffic whose heap events cluster per host — and runs
# the identical workload with lanes off (single fast loop) and lanes on,
# reporting both rates and the ratio.  The two runs are bit-identical in
# simulated results (pinned by the determinism suite), so ops/s ratios are
# pure wall-clock.  Setup is excluded: the timer starts at ``run_until``.
# ---------------------------------------------------------------------------

class _EchoServer(Server):
    """RPC target modelling the metadata service's commit pipeline:
    ``stages`` sequential CPU slices per request (parse, resolve, apply,
    journal, ack), so a loaded server's lane sees long runs of same-lane
    heap events between cross-lane hops."""

    def __init__(self, host: Host, work_us: float, stages: int = 1):
        super().__init__(host)
        self.stages = stages
        self.stage_us = work_us / stages

    def rpc_echo(self, payload):
        for _ in range(self.stages):
            yield from self.host.work(self.stage_us)
        return payload


def _arm_watchdogs(sim: Simulator, hosts, per_host: int,
                   horizon_us: float = 1_000_000.0) -> None:
    """Arm ``per_host`` standing one-shot timers on each host — lease
    expirations, session timeouts, failure detectors.  They are staggered
    far past the measured window; their job is to *stand* in the
    future-event heaps the way a real fleet's timeout wheels do.  That
    population is exactly the regime where one global heap pays
    O(log fleet-total) per push and pop while per-host lanes pay
    O(log local)."""
    n = 0
    for host in hosts:
        lane = host.lane
        for _ in range(per_host):
            delay = horizon_us * (1.0 + ((n * 0.61803398875) % 1.0))
            sim.timeout_into(lane, delay)
            n += 1


def _rpc_run(kernel: str, service_hosts: int, service_cores: int,
             client_hosts: int, fleet_hosts: int, num_clients: int,
             rpcs_per_client: int, think_us: float, work_us: float,
             work_stages: int, timers_per_host: int, timer_period_us: float,
             watchdogs_per_host: int) -> Tuple[int, float, float]:
    """mdtest-style closed-loop clients against a hot metadata tier, over a
    quiescent data-node fleet.  Returns (client ops, wall seconds, final
    sim.now)."""
    sim = _untraced_sim(kernel)
    net = Network(sim, one_way_us=50.0)
    services = [Host(sim, f"svc{i}", cores=service_cores)
                for i in range(service_hosts)]
    clients = [Host(sim, f"cli{i}", cores=8) for i in range(client_hosts)]
    fleet = [Host(sim, f"node{i}", cores=2) for i in range(fleet_hosts)]
    servers = [_EchoServer(host, work_us, work_stages) for host in services]

    def control_loop(host, phase):
        # Staggered phases, as real jittered heartbeats are.
        yield sim.timeout(phase)
        while True:
            yield sim.timeout(timer_period_us)

    all_hosts = services + clients + fleet
    total = len(all_hosts) * timers_per_host
    for i in range(total):
        host = all_hosts[i % len(all_hosts)]
        phase = timer_period_us * ((i * 0.61803398875) % 1.0)
        sim.process(control_loop(host, phase), name=f"ctl-{i}",
                    lane=host.lane)
    _arm_watchdogs(sim, fleet, watchdogs_per_host)
    num_servers = len(servers)
    home_lanes = [host.lane for host in clients]

    def client(cid):
        # mdtest-style closed-loop rank: barrier start, then back-to-back
        # RPCs to its home shard, each with a standing per-op deadline
        # timer (never cancelled — it models the timeout wheel real
        # clients keep armed, and keeps the pending-event population
        # realistic).  The deadline is routed to the rank's driver-host
        # lane so the standing population stays off the hot shard's lane.
        yield sim.timeout(think_us * ((cid * 0.7548776662) % 1.0))
        shard = servers[(cid * num_servers) // num_clients]
        home = home_lanes[cid % len(home_lanes)]
        for k in range(rpcs_per_client):
            sim.timeout_into(home, 120_000.0 + cid)  # fires post-run
            if think_us:
                yield sim.timeout_into(home, think_us)
            yield from net.rpc(shard, "echo", k)

    procs = []
    for cid in range(num_clients):
        home = clients[cid % len(clients)]
        procs.append(sim.process(client(cid), name=f"client-{cid}",
                                 lane=home.lane))
    done = AllOf(sim, procs)
    start = time.perf_counter()
    sim.run_until(done)
    elapsed = time.perf_counter() - start
    return num_clients * rpcs_per_client, elapsed, sim.now


def _sweep_run(kernel: str, fleet_hosts: int, collector_hosts: int,
               sweeps_per_host: int, sweep_steps: int, step_us: float,
               spread_us: float,
               watchdogs_per_host: int) -> Tuple[int, float, float]:
    """Fleet-maintenance regime: every node periodically wakes and runs a
    burst of short local steps (lease-table scan, cache sweep, compaction
    bookkeeping), then reports to a collector.  Node wake-ups are staggered
    so bursts barely overlap: the lane kernel rides long same-lane streaks
    at O(log local) per step while the single loop pays O(log fleet-total)
    against the standing watchdog population.  Returns (sweeps, wall
    seconds, final sim.now)."""
    sim = _untraced_sim(kernel)
    net = Network(sim, one_way_us=50.0)
    collectors = [Host(sim, f"col{i}", cores=8)
                  for i in range(collector_hosts)]
    coll_servers = [_EchoServer(host, 2.0) for host in collectors]
    fleet = [Host(sim, f"node{i}", cores=2) for i in range(fleet_hosts)]
    _arm_watchdogs(sim, fleet, watchdogs_per_host)
    num_collectors = len(coll_servers)

    def sweeper(idx, _host):
        phase = spread_us * ((idx * 0.61803398875) % 1.0)
        yield sim.timeout(phase)
        for s in range(sweeps_per_host):
            for _ in range(sweep_steps):
                yield sim.timeout(step_us)
            yield from net.rpc(coll_servers[idx % num_collectors],
                               "echo", idx)
            if s + 1 < sweeps_per_host:
                yield sim.timeout(spread_us)

    procs = [sim.process(sweeper(i, host), name=f"sweep-{i}",
                         lane=host.lane)
             for i, host in enumerate(fleet)]
    done = AllOf(sim, procs)
    start = time.perf_counter()
    sim.run_until(done)
    elapsed = time.perf_counter() - start
    return fleet_hosts * sweeps_per_host, elapsed, sim.now


def _compact_run(kernel: str, fleet_hosts: int, watchdogs_per_host: int,
                 shard_hosts: int, steps_per_shard: int,
                 step_us: float) -> Tuple[int, float, float]:
    """Journal-replay / LSM-compaction regime: one metadata shard at a time
    replays its commit journal — a long run of short, jittered CPU steps on
    a single host — while a large quiescent data fleet keeps its timeout
    wheels armed.  Shards take turns (staggered phases), so exactly one
    lane is hot at any moment: the lane kernel pops from a near-empty lane
    heap with zero switches, while the single global loop pays
    O(log fleet-total) per push *and* pop against the standing watchdog
    population.  Returns (replay steps, wall seconds, final sim.now)."""
    sim = _untraced_sim(kernel)
    shards = [Host(sim, f"shard{i}", cores=8) for i in range(shard_hosts)]
    fleet = [Host(sim, f"node{i}", cores=2) for i in range(fleet_hosts)]
    _arm_watchdogs(sim, fleet, watchdogs_per_host)
    phase_us = steps_per_shard * step_us * 1.25

    def compactor(idx, _host):
        yield sim.timeout(idx * phase_us)
        for s in range(steps_per_shard):
            # Jittered step cost (entry sizes vary); mean ~= step_us.
            yield sim.timeout(step_us * (0.75 + ((s * 0.61803398875) % 0.5)))

    procs = [sim.process(compactor(i, host), name=f"compact-{i}",
                         lane=host.lane)
             for i, host in enumerate(shards)]
    done = AllOf(sim, procs)
    start = time.perf_counter()
    sim.run_until(done)
    elapsed = time.perf_counter() - start
    return shard_hosts * steps_per_shard, elapsed, sim.now


_RUNNERS: Dict[str, Callable[..., Tuple[int, float, float]]] = {
    "rpc": _rpc_run,
    "sweep": _sweep_run,
    "compact": _compact_run,
}


def _run_bench(kernel: str, params: Dict[str, object]
               ) -> Tuple[int, float, float]:
    params = dict(params)
    runner = _RUNNERS[str(params.pop("kind"))]
    return runner(kernel, **params)


#: name -> {kind, topology kwargs}.  ``paper_scale`` mirrors the paper's
#: motivating hot-directory scenario — mdtest ranks on a driver host
#: hammering one hot metadata shard (staged commit pipeline, zero think)
#: while a 1k-node data fleet keeps ~100k armed timers standing in the
#: heaps.  The lane kernel consolidates the whole op pipeline onto the
#: shard's lane (small heap, near-zero switches) and leaves the standing
#: population distributed.  ``fleet_scale`` is the
#: order-of-magnitude-more-hosts maintenance regime ROADMAP targets
#: (HopsFS/λFS-scale fleets): staggered per-node housekeeping bursts over
#: an even larger standing population.  ``compact_scale`` is the shard
#: journal-replay/compaction regime: one hot lane at a time doing a long
#: run of short steps, the lane kernel's best case.
MULTIHOST_BENCHES: Dict[str, Dict[str, object]] = {
    "paper_scale": dict(kind="rpc", service_hosts=1, service_cores=128,
                        client_hosts=1, fleet_hosts=1024, num_clients=512,
                        rpcs_per_client=12, think_us=0.0, work_us=30.0,
                        work_stages=6, timers_per_host=8,
                        timer_period_us=250_000.0, watchdogs_per_host=96),
    "fleet_scale": dict(kind="sweep", fleet_hosts=4096, collector_hosts=16,
                        sweeps_per_host=1, sweep_steps=64, step_us=1.0,
                        spread_us=400_000.0, watchdogs_per_host=32),
    "compact_scale": dict(kind="compact", fleet_hosts=2048,
                          watchdogs_per_host=64, shard_hosts=4,
                          steps_per_shard=50_000, step_us=1.0),
}


def run_multihost_benches(repeats: int = 5) -> Dict[str, Dict[str, float]]:
    """Run each multi-host bench with lanes off and on; the
    ``lane_speedup`` ratios are the lane kernel's scorecard.

    Each repeat runs the two kernels back to back and records the paired
    wall ratio; ``lane_speedup`` is the *median* of those ratios, which is
    robust against the slow load drift of shared/virtualized runners in a
    way best-of-N (dominated by whichever kernel got the quietest slice)
    is not."""
    results: Dict[str, Dict[str, float]] = {}
    for name, params in MULTIHOST_BENCHES.items():
        row: Dict[str, float] = {}
        finals = {}
        best = {"fast": float("inf"), "lanes": float("inf")}
        ratios: List[float] = []
        ops = 0
        for _ in range(repeats):
            pair = {}
            for kernel in ("fast", "lanes"):
                ops, elapsed, final_now = _run_bench(kernel, params)
                finals[kernel] = final_now
                pair[kernel] = elapsed
                if elapsed < best[kernel]:
                    best[kernel] = elapsed
            ratios.append(pair["fast"] / pair["lanes"])
        # Both kernels must have simulated the same history (cheap sanity
        # check on top of the determinism suite).
        if finals["fast"] != finals["lanes"]:
            raise AssertionError(
                f"{name}: lane kernel diverged "
                f"(now {finals['lanes']} != {finals['fast']})")
        for kernel, prefix in (("fast", "global"), ("lanes", "lanes")):
            row[prefix + "_wall_s"] = round(best[kernel], 6)
            row[prefix + "_ops_per_s"] = round(ops / best[kernel], 1)
        row["ops"] = ops
        row["final_now_us"] = round(finals["fast"], 3)
        ratios.sort()
        row["lane_speedup"] = round(ratios[len(ratios) // 2], 3)
        results[name] = row
    return results


def _geomean(ratios: List[float]) -> float:
    if not ratios:
        return 0.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))


def geomean_speedup(kernel: Dict[str, Dict[str, float]],
                    key: str = "speedup_vs_seed") -> float:
    return _geomean([row[key] for row in kernel.values() if key in row])


# ---------------------------------------------------------------------------
# Tracing overhead: the same metadata workload traced vs untraced.
# ---------------------------------------------------------------------------

def measure_tracing_overhead(clients: int = 24,
                             items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of span tracing on one mdtest mkdir run on Mantle.

    The kernel microbenches never cross an instrumentation site, so this is
    the number that actually measures the tracer: the identical workload
    with the null tracer and with a live :class:`~repro.sim.trace.Tracer`.
    The simulated results are identical either way (pinned by the
    determinism tests); only wall-clock and the span count differ.
    """
    from repro.experiments.base import mdtest_metrics, mdtest_metrics_traced

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    untraced_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer = mdtest_metrics_traced("mantle", "mkdir", clients=clients,
                                      items=items)
    traced_s = time.perf_counter() - start
    return {
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_ratio": round(traced_s / untraced_s, 3) if untraced_s
        else 0.0,
        "spans": len(tracer.spans),
    }


def measure_profiling_overhead(clients: int = 24,
                               items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of cost-attribution profiling on one mdtest run.

    Profiling = span tracing + per-process span stacks + cost charges +
    the telemetry busy counters the reconciliation check needs, i.e. the
    full ``mantle-exp profile`` instrumentation, against the identical
    uninstrumented workload.  The simulated results are bit-identical
    either way (pinned by the determinism tests); this also times the
    profile fold itself.
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_profiled)
    from repro.sim.profile import profile_from_tracer

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer, _ = mdtest_metrics_profiled("mantle", "mkdir",
                                           clients=clients, items=items)
    profile = profile_from_tracer(tracer)
    on_s = time.perf_counter() - start
    return {
        "profiling_off_s": round(off_s, 4),
        "profiling_on_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "spans": profile.span_count,
        "centers": len(profile.centers),
    }


def measure_telemetry_overhead(clients: int = 24,
                               items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of windowed telemetry on one mdtest mkdir run.

    Same shape as :func:`measure_tracing_overhead`: the identical workload
    with telemetry off and with a live
    :class:`~repro.sim.telemetry.Telemetry` registry.  The simulated
    results are bit-identical either way (pinned by the determinism
    tests); only wall-clock and the instrument count differ.
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_telemetry)

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, telemetry, _ = mdtest_metrics_telemetry("mantle", "mkdir",
                                               clients=clients, items=items)
    on_s = time.perf_counter() - start
    return {
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "instruments": len(telemetry.instruments()),
    }


def measure_digest_overhead(clients: int = 24,
                            items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of the tail-observability instrumentation.

    Times the identical mdtest mkdir run uninstrumented and with the full
    ``mantle-exp triage`` rig attached: windowed per-op latency digests
    plus a :class:`~repro.sim.trace.TailKeeper`-carrying tracer (and the
    phase segmentation fold that runs before teardown).  The simulated
    results are bit-identical either way (pinned by the determinism
    tests); only wall-clock, the digest population and the kept span
    count differ.
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_triaged)
    from repro.sim.telemetry import latency_digests

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer, telemetry, phases = mdtest_metrics_triaged(
        "mantle", "mkdir", clients=clients, items=items)
    on_s = time.perf_counter() - start
    digests = latency_digests(telemetry)
    return {
        "digest_off_s": round(off_s, 4),
        "digest_on_s": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "digests": len(digests),
        "digest_windows": sum(len(d.windows) for _op, d in digests),
        "kept_spans": tracer.keeper.kept_spans,
        "phases": len(phases),
    }


def measure_critpath_overhead(clients: int = 24,
                              items: int = 8) -> Dict[str, float]:
    """Wall-clock cost of critical-path extraction on one mdtest run.

    The instrumentation is the same as profiling (span tree + charges +
    blocked edges); what this times on top is the extraction itself —
    :func:`~repro.sim.critpath.critpath_from_tracer` plus the
    profile-contrast fold, i.e. everything ``mantle-exp critpath`` does
    after the simulation finishes.  The simulated results are
    bit-identical to the uninstrumented run (pinned by the determinism
    tests).
    """
    from repro.experiments.base import (mdtest_metrics,
                                        mdtest_metrics_profiled)
    from repro.sim.critpath import (contrast_with_profile,
                                    critpath_from_tracer)
    from repro.sim.profile import profile_from_tracer

    start = time.perf_counter()
    mdtest_metrics("mantle", "mkdir", clients=clients, items=items)
    off_s = time.perf_counter() - start

    start = time.perf_counter()
    _, tracer, _ = mdtest_metrics_profiled("mantle", "mkdir",
                                           clients=clients, items=items)
    sim_s = time.perf_counter() - start
    start = time.perf_counter()
    crit = critpath_from_tracer(tracer)
    contrast = contrast_with_profile(crit, profile_from_tracer(tracer))
    extract_s = time.perf_counter() - start
    on_s = sim_s + extract_s
    return {
        "critpath_off_s": round(off_s, 4),
        "critpath_on_s": round(on_s, 4),
        "extract_s": round(extract_s, 4),
        "overhead_ratio": round(on_s / off_s, 3) if off_s else 0.0,
        "ops": crit.ops,
        "centers": len(crit.gated),
        "contrast_rows": len(contrast),
    }


# ---------------------------------------------------------------------------
# Quick experiment suite timing.
# ---------------------------------------------------------------------------

def time_quick_suite(jobs: int = 1,
                     experiments: Optional[List[str]] = None) -> Dict[str, object]:
    """Time ``mantle-exp all --scale quick`` (optionally a subset) end to end."""
    from repro.experiments.runner import run_experiments

    start = time.perf_counter()
    outcomes = run_experiments(experiments, scale="quick", jobs=jobs,
                               quiet=True)
    elapsed = time.perf_counter() - start
    return {
        "jobs": jobs,
        "wall_s": round(elapsed, 3),
        "per_experiment_s": {o.exp_id: round(o.wall_s, 3) for o in outcomes},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.wallclock",
        description="Wall-clock regression harness (kernel + quick suite)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--skip-suite", action="store_true",
                        help="only run the kernel microbenches")
    parser.add_argument("--suite-jobs", type=int, default=None, metavar="N",
                        help="additionally time the quick suite with N workers")
    parser.add_argument("--experiments", nargs="*", default=None,
                        help="subset of experiment ids for the suite timing")
    parser.add_argument("--repeats", type=int, default=3,
                        help="microbench repetitions (best-of)")
    parser.add_argument("--kernel", choices=sorted(KERNELS),
                        default="fast",
                        help="which kernel the microbenches run on "
                             "(default: fast)")
    parser.add_argument("--assert-vs", metavar="REV", default=None,
                        help="fail if the kernel geomean drops below the "
                             "floor vs recorded baseline REV (see "
                             "--assert-frac); recorded: "
                             + ", ".join(list_baselines()))
    parser.add_argument("--assert-frac", type=float, default=0.05,
                        metavar="FRAC",
                        help="allowed regression for --assert-vs "
                             "(default 0.05, i.e. a 0.95x geomean floor)")
    parser.add_argument("--save-baseline", metavar="REV", default=None,
                        help="record this run's kernel rates as baseline "
                             "REV under src/repro/bench/baselines/")
    parser.add_argument("--skip-multihost", action="store_true",
                        help="skip the multi-host lane benches")
    parser.add_argument("--assert-lanes", type=float, default=None,
                        metavar="RATIO",
                        help="fail if the multi-host lane-speedup geomean "
                             "falls below RATIO (e.g. 1.2)")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the traced-vs-untraced workload timing")
    args = parser.parse_args(argv)

    report: Dict[str, object] = {
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "kernel_mode": args.kernel,
        "kernel": run_kernel_benches(repeats=args.repeats,
                                     kernel=args.kernel),
    }
    for name, row in report["kernel"].items():
        speedup = row.get("speedup_vs_seed")
        suffix = f"  {speedup:.2f}x vs seed" if speedup else ""
        print(f"kernel/{name:18s} {row['events_per_s']:>12,.0f} events/s "
              f"({row['wall_s']:.3f}s){suffix}")
    for rev in list_baselines():
        key = "speedup_vs_" + rev
        geo = round(geomean_speedup(report["kernel"], key=key), 3)
        if geo:
            report["kernel_geomean_" + key] = geo
            print(f"kernel geomean speedup vs {rev}: {geo:.2f}x")

    failed = False
    if args.assert_vs is not None:
        floor = 1.0 - args.assert_frac
        geo = report.get("kernel_geomean_speedup_vs_" + args.assert_vs)
        if geo is None:
            print(f"FAIL: baseline {args.assert_vs!r} has no "
                  f"{args.kernel}-kernel rates (recorded: "
                  f"{', '.join(list_baselines())})", file=sys.stderr)
            failed = True
        elif geo < floor:
            print(f"FAIL: kernel geomean {geo:.3f}x vs {args.assert_vs} is "
                  f"below the {floor:.2f}x floor "
                  f"(>{args.assert_frac:.0%} regression)", file=sys.stderr)
            failed = True
        else:
            print(f"assert-vs {args.assert_vs} OK: "
                  f"{geo:.3f}x >= {floor:.2f}x")

    if args.save_baseline:
        try:
            import subprocess
            commit = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
                capture_output=True, text=True, check=True).stdout.strip()
        except Exception:
            commit = ""
        path = save_baseline(args.save_baseline, report["kernel"],
                             commit=commit, kernel=args.kernel)
        print(f"(recorded baseline {args.save_baseline!r} at {path})")

    if not args.skip_multihost:
        multihost = run_multihost_benches(repeats=args.repeats)
        report["multihost"] = multihost
        for name, row in multihost.items():
            print(f"multihost/{name:15s} {row['global_ops_per_s']:>10,.0f} "
                  f"-> {row['lanes_ops_per_s']:>10,.0f} ops/s with lanes "
                  f"({row['lane_speedup']:.2f}x)")
        lane_geo = round(_geomean(
            [row["lane_speedup"] for row in multihost.values()]), 3)
        report["multihost_geomean_lane_speedup"] = lane_geo
        print(f"multihost geomean lane speedup: {lane_geo:.2f}x")
        if args.assert_lanes is not None:
            if lane_geo < args.assert_lanes:
                print(f"FAIL: multihost lane-speedup geomean {lane_geo:.3f}x "
                      f"is below the {args.assert_lanes:.2f}x target",
                      file=sys.stderr)
                failed = True
            else:
                print(f"assert-lanes OK: {lane_geo:.3f}x >= "
                      f"{args.assert_lanes:.2f}x")
    elif args.assert_lanes is not None:
        print("FAIL: --assert-lanes needs the multi-host benches "
              "(drop --skip-multihost)", file=sys.stderr)
        failed = True

    if not args.skip_overhead:
        overhead = measure_tracing_overhead()
        report["tracing_overhead"] = overhead
        print(f"tracing overhead      {overhead['overhead_ratio']:.2f}x wall "
              f"({overhead['untraced_s']:.2f}s -> {overhead['traced_s']:.2f}s,"
              f" {overhead['spans']} spans)")
        telemetry_cost = measure_telemetry_overhead()
        report["telemetry_overhead"] = telemetry_cost
        print(f"telemetry overhead    "
              f"{telemetry_cost['overhead_ratio']:.2f}x wall "
              f"({telemetry_cost['telemetry_off_s']:.2f}s -> "
              f"{telemetry_cost['telemetry_on_s']:.2f}s, "
              f"{telemetry_cost['instruments']} instruments)")
        profiling_cost = measure_profiling_overhead()
        report["profiling_overhead"] = profiling_cost
        print(f"profiling overhead    "
              f"{profiling_cost['overhead_ratio']:.2f}x wall "
              f"({profiling_cost['profiling_off_s']:.2f}s -> "
              f"{profiling_cost['profiling_on_s']:.2f}s, "
              f"{profiling_cost['spans']} spans, "
              f"{profiling_cost['centers']} centers)")
        digest_cost = measure_digest_overhead()
        report["digest_overhead"] = digest_cost
        print(f"digest overhead       "
              f"{digest_cost['overhead_ratio']:.2f}x wall "
              f"({digest_cost['digest_off_s']:.2f}s -> "
              f"{digest_cost['digest_on_s']:.2f}s, "
              f"{digest_cost['digests']} digests / "
              f"{digest_cost['digest_windows']} windows, "
              f"{digest_cost['kept_spans']} tail spans kept)")
        critpath_cost = measure_critpath_overhead()
        report["critpath_overhead"] = critpath_cost
        print(f"critpath overhead     "
              f"{critpath_cost['overhead_ratio']:.2f}x wall "
              f"({critpath_cost['critpath_off_s']:.2f}s -> "
              f"{critpath_cost['critpath_on_s']:.2f}s, extraction "
              f"{critpath_cost['extract_s']:.3f}s over "
              f"{critpath_cost['ops']} ops, "
              f"{critpath_cost['centers']} centers)")

    if not args.skip_suite:
        suite: Dict[str, object] = {"serial": time_quick_suite(
            jobs=1, experiments=args.experiments)}
        print(f"suite/serial          {suite['serial']['wall_s']:.1f}s wall")
        if args.suite_jobs and args.suite_jobs > 1:
            suite[f"jobs{args.suite_jobs}"] = time_quick_suite(
                jobs=args.suite_jobs, experiments=args.experiments)
            print(f"suite/jobs{args.suite_jobs}          "
                  f"{suite[f'jobs{args.suite_jobs}']['wall_s']:.1f}s wall")
        report["quick_suite"] = suite

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"(wrote {args.output})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
