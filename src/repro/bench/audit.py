"""Cross-layer consistency auditing for Mantle deployments.

Mantle keeps directory access metadata twice — in every IndexNode replica
and in TafDB's dirent rows — and the design's correctness rests on the two
staying synchronized ("maintaining strong synchronization", §4).  The
auditor walks both layers and reports every divergence:

* a directory present in the IndexTable without its TafDB dirent row (or
  vice versa), or with a different id;
* a directory missing its TafDB attribute row;
* IndexNode replicas that disagree with the leader;
* leaked rename locks (entries still locked with no rename in flight);
* attribute counters that disagree with the actual child count.

Used by the soak test and available to users as a debugging tool.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.tafdb.rows import attr_key, dirent_key


@dataclasses.dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    kind: str
    detail: str

    def __str__(self):
        return f"[{self.kind}] {self.detail}"


def _read_row(system, key):
    shard_id = system.tafdb.partitioner.shard_of(key.pid)
    server = system.tafdb.servers[
        system.tafdb.partitioner.server_of_shard(shard_id)]
    return server.shard(shard_id).read(key)


def _scan_children(system, pid):
    shard_id = system.tafdb.partitioner.shard_of(pid)
    server = system.tafdb.servers[
        system.tafdb.partitioner.server_of_shard(shard_id)]
    return server.shard(shard_id).scan_children(pid)


def _folded_attrs(system, dir_id):
    shard_id = system.tafdb.partitioner.shard_of(dir_id)
    server = system.tafdb.servers[
        system.tafdb.partitioner.server_of_shard(shard_id)]
    return server.shard(shard_id).read_attrs_folded(dir_id)


def check_consistency(system, check_counts: bool = True,
                      allow_locks: bool = False) -> List[Violation]:
    """Audit one quiescent MantleSystem; returns all violations found.

    Run this only when no operations are in flight (mid-transaction states
    are legitimately divergent).
    """
    violations: List[Violation] = []
    leader = system.index_group.current_leader()
    if leader is None:
        return [Violation("no-leader", "raft group has no leader")]
    table = leader.state_machine.table

    # 1. Every IndexTable directory exists in TafDB with matching id.
    for meta in table.entries():
        row = _read_row(system, dirent_key(meta.pid, meta.name))
        if row is None:
            violations.append(Violation(
                "missing-dirent",
                f"dir {meta.pid}:{meta.name} (id {meta.id}) has no TafDB "
                "dirent row"))
        elif row.value.id != meta.id:
            violations.append(Violation(
                "id-mismatch",
                f"dir {meta.pid}:{meta.name}: IndexTable id {meta.id} vs "
                f"TafDB id {row.value.id}"))
        if _read_row(system, attr_key(meta.id)) is None:
            violations.append(Violation(
                "missing-attrs",
                f"dir id {meta.id} has no TafDB attribute row"))
        if meta.locked and not allow_locks:
            violations.append(Violation(
                "leaked-lock",
                f"dir {meta.pid}:{meta.name} still holds rename lock "
                f"owner={meta.lock_owner}"))

    # 2. Every TafDB directory dirent is known to the IndexTable.
    seen_dirs = {(m.pid, m.name) for m in table.entries()}
    pids = {system.root_id} | {m.id for m in table.entries()}
    for pid in pids:
        for name, dirent in _scan_children(system, pid):
            if dirent.is_dir and (pid, name) not in seen_dirs:
                violations.append(Violation(
                    "orphan-dirent",
                    f"TafDB dir {pid}:{name} (id {dirent.id}) missing from "
                    "IndexTable"))

    # 3. Replicas agree with the leader (after replication settles).
    leader_view = sorted((m.pid, m.name, m.id) for m in table.entries())
    for nid, node in system.index_group.nodes.items():
        if node is leader or node.host.crashed or node._stopped:
            continue
        replica_view = sorted((m.pid, m.name, m.id)
                              for m in node.state_machine.table.entries())
        if replica_view != leader_view:
            violations.append(Violation(
                "replica-divergence",
                f"replica {nid} has {len(replica_view)} dirs vs leader's "
                f"{len(leader_view)}"))

    # 4. Attribute entry counts match the actual children.
    if check_counts:
        for pid in pids:
            attrs = _folded_attrs(system, pid)
            if attrs is None:
                continue
            actual = len(_scan_children(system, pid))
            if attrs.entry_count != actual:
                violations.append(Violation(
                    "count-mismatch",
                    f"dir id {pid}: entry_count {attrs.entry_count} vs "
                    f"{actual} actual children"))
    return violations
