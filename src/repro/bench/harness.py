"""The workload runner: N simulated clients against one metadata system."""

from __future__ import annotations

from typing import Optional

from repro.errors import MetadataError
from repro.ops import make_op
from repro.sim.stats import MetricSet, OpContext


def run_workload(system, workload, num_clients: Optional[int] = None,
                 metrics: Optional[MetricSet] = None,
                 setup: bool = True) -> MetricSet:
    """Run ``workload`` with concurrent clients; returns the metrics.

    Each client is one simulated process draining its operation stream
    back-to-back (closed-loop, like mdtest threads).  Failures surface in
    ``metrics.ops_failed`` rather than aborting the run — contended
    workloads are *supposed* to abort and retry.
    """
    if num_clients is None:
        num_clients = getattr(workload, "num_clients")
    if setup:
        workload.setup(system)
    metrics = metrics or MetricSet()
    sim = system.sim

    def client(cid: int):
        # Hoisted attribute lookups: this loop runs once per simulated op.
        perform = system.perform
        record = metrics.record
        record_failure = metrics.record_failure
        for op, args in workload.client_ops(cid):
            ctx = OpContext(op)
            try:
                yield from perform(make_op(op, *args), ctx=ctx)
            except MetadataError:
                ctx.finish = sim.now
                record_failure(ctx)
                continue
            record(ctx)

    metrics.started_at = sim.now
    done = sim.all_of([
        sim.process(client(cid), name=f"client-{cid}")
        for cid in range(num_clients)
    ])
    sim.run_until(done)
    if not done.triggered:
        raise RuntimeError("workload deadlocked: clients never finished")
    metrics.finished_at = sim.now
    return metrics


def run_single_op(system, op: str, *args) -> OpContext:
    """Run one operation and return its context (latency, phases, RPCs)."""
    ctx = OpContext(op)
    system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))
    return ctx


def completion_time_us(metrics: MetricSet) -> float:
    """Wall-clock (simulated) duration of a finished workload run."""
    return metrics.duration_us
