"""Saturation analyzer: attribute each experiment point to its bottleneck.

The paper's scaling arguments are mechanistic — baselines hit CPU
saturation on their metadata servers first (Figs 12/14/19), Mantle's
lookups are wire-dominated until much higher load, and shared-directory
mutation workloads die of transaction conflicts rather than of any
hardware limit.  This module turns a run's telemetry + metrics into that
attribution automatically: each run is classified as **cpu-bound**,
**fsync-bound**, **rpc-bound** or **contention-bound** when the dominant
score clears a threshold in the steady-state window, else
**underloaded**.

Scores, all in [0, 1]:

* ``cpu`` — max per-host CPU busy-fraction (time-clipped to the steady
  window, from the ``host.cpu_busy_us`` telemetry counter);
* ``fsync`` — max per-host disk busy-fraction (``host.disk_busy_us``);
* ``rpc`` — fraction of completed-op latency spent as network flight
  time (mean RPC rounds x RTT / mean latency).  High when the wire, not
  any server, sets latency — the signature of an unsaturated Mantle;
* ``contention`` — max of the TafDB abort ratio (aborts / outcomes, from
  the per-window ``tafdb.*`` counters) and the op retry ratio.

The classifier itself is pure arithmetic over these numbers, so it is
unit-testable on synthetic timelines and bit-deterministic across
kernels (every input derives from simulated time only).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

#: A score must clear this to pin the run on one resource.
DEFAULT_THRESHOLD = 0.5

#: Fraction of the run treated as steady state (the middle half).
STEADY_FRACTION = 0.5

#: Score key -> verdict label.
LABELS = {
    "cpu": "cpu-bound",
    "fsync": "fsync-bound",
    "rpc": "rpc-bound",
    "contention": "contention-bound",
}

UNDERLOADED = "underloaded"


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Classification of one run plus the evidence behind it."""

    label: str
    scores: Dict[str, float]
    hotspots: Dict[str, str]
    window: Tuple[float, float]

    def describe(self) -> str:
        parts = [f"{key}={self.scores.get(key, 0.0):.2f}"
                 for key in sorted(LABELS)]
        hot = self.hotspots.get(self.label.split("-")[0], "")
        suffix = f" @{hot}" if hot else ""
        return f"{self.label}{suffix} ({', '.join(parts)})"


def steady_window(started_us: float, finished_us: float,
                  fraction: float = STEADY_FRACTION) -> Tuple[float, float]:
    """The middle ``fraction`` of ``[started_us, finished_us]`` — clear of
    warm-up (empty caches, cold Raft pipeline) and drain (stragglers)."""
    span = finished_us - started_us
    if span <= 0:
        return started_us, started_us
    mid = started_us + span / 2.0
    half = span * fraction / 2.0
    return mid - half, mid + half


#: Scores that measure distance to a hard ceiling (utilizations/ratios).
#: They outrank ``rpc``, which is a latency decomposition: a host at 90%
#: CPU is the knee even if most of an op's latency is still wire time.
SATURATION_KEYS = ("cpu", "fsync", "contention")


def classify(scores: Dict[str, float],
             threshold: float = DEFAULT_THRESHOLD) -> str:
    """Two-tier dominant-resource classification.

    The highest *saturation* score (cpu/fsync/contention) at or above
    ``threshold`` wins; otherwise a wire fraction >= ``threshold`` makes
    the run rpc-bound; otherwise it is underloaded.  Ties break in sorted
    key order so the verdict is deterministic.
    """
    best_key = None
    best_score = -1.0
    for key in sorted(scores):
        if key in SATURATION_KEYS and scores[key] > best_score:
            best_key = key
            best_score = scores[key]
    if best_key is not None and best_score >= threshold:
        return LABELS.get(best_key, best_key + "-bound")
    if scores.get("rpc", 0.0) >= threshold:
        return LABELS["rpc"]
    return UNDERLOADED


def _busy_fractions(telemetry, metric: str, lo: float,
                    hi: float) -> Dict[str, float]:
    """Per-host busy-fraction of a ``*_busy_us`` counter over ``[lo, hi)``."""
    elapsed = hi - lo
    if elapsed <= 0:
        return {}
    out = {}
    for host in telemetry.hosts(metric):
        counter = telemetry.counter(metric, host)
        capacity = counter.capacity if counter.capacity > 0 else 1.0
        out[host] = counter.sum_clipped(lo, hi) / (elapsed * capacity)
    return out


def _max_entry(fractions: Dict[str, float]) -> Tuple[float, str]:
    best_host = ""
    best = 0.0
    for host in sorted(fractions):
        if fractions[host] > best:
            best = fractions[host]
            best_host = host
    return best, best_host


def rpc_wire_fraction(system, metrics) -> float:
    """Fraction of completed-op latency that is pure network flight."""
    total_latency = sum(rec.total for rec in metrics.latency.values())
    if total_latency <= 0:
        return 0.0
    total_rpcs = sum(rec.total for rec in metrics.rpc_rounds.values())
    rtt = 2.0 * system.costs.net_one_way_us
    return min(1.0, total_rpcs * rtt / total_latency)


def contention_score(metrics, telemetry, lo: float, hi: float) -> float:
    """Max of the steady-window TafDB abort ratio and the retry ratio."""
    aborts = 0.0
    commits = 0.0
    for inst in telemetry.instruments():
        if inst.kind != "counter":
            continue
        if inst.name.startswith("tafdb.aborts."):
            aborts += inst.sum_clipped(lo, hi)
        elif inst.name == "tafdb.commits":
            commits += inst.sum_clipped(lo, hi)
    abort_ratio = aborts / (aborts + commits) if (aborts + commits) > 0 else 0.0
    attempts = metrics.ops_completed + metrics.retries
    retry_ratio = metrics.retries / attempts if attempts > 0 else 0.0
    return max(abort_ratio, retry_ratio)


def classify_run(system, metrics, telemetry=None,
                 threshold: float = DEFAULT_THRESHOLD) -> Verdict:
    """Score and classify one finished benchmark run.

    ``telemetry`` defaults to the system simulator's registry; it must
    have been enabled for the run for the cpu/fsync/contention scores to
    be meaningful (they fall back to 0 otherwise).
    """
    if telemetry is None:
        telemetry = system.sim.telemetry
    telemetry.finalize(system.sim.now)
    lo, hi = steady_window(metrics.started_at, metrics.finished_at)
    cpu_fracs = _busy_fractions(telemetry, "host.cpu_busy_us", lo, hi)
    disk_fracs = _busy_fractions(telemetry, "host.disk_busy_us", lo, hi)
    cpu, cpu_host = _max_entry(cpu_fracs)
    fsync, fsync_host = _max_entry(disk_fracs)
    scores = {
        "cpu": min(1.0, cpu),
        "fsync": min(1.0, fsync),
        "rpc": rpc_wire_fraction(system, metrics),
        "contention": contention_score(metrics, telemetry, lo, hi),
    }
    hotspots = {}
    if cpu_host:
        hotspots["cpu"] = cpu_host
    if fsync_host:
        hotspots["fsync"] = fsync_host
    return Verdict(label=classify(scores, threshold), scores=scores,
                   hotspots=hotspots, window=(lo, hi))


# -- timeline helpers (CLI rendering / tests) -------------------------------


def utilization_series(counter) -> list:
    """``[(window_start_us, busy_fraction)]`` for a ``*_busy_us`` counter."""
    capacity = counter.capacity if counter.capacity > 0 else 1.0
    denom = counter.window_us * capacity
    return [(start, value / denom) for start, value in counter.series()]


def hit_ratio_series(telemetry, hits_metric: str = "index.cache_hits",
                     misses_metric: str = "index.cache_misses") -> list:
    """``[(window_start_us, hit_ratio)]`` aggregated across hosts."""
    totals: Dict[int, list] = {}
    for metric, slot in ((hits_metric, 0), (misses_metric, 1)):
        for host in telemetry.hosts(metric):
            counter = telemetry.counter(metric, host)
            for idx, value in counter.windows.items():
                cell = totals.setdefault(idx, [0.0, 0.0])
                cell[slot] += value
    w = None
    for metric in (hits_metric, misses_metric):
        for host in telemetry.hosts(metric):
            w = telemetry.counter(metric, host).window_us
            break
        if w is not None:
            break
    if w is None:
        return []
    out = []
    for idx in sorted(totals):
        hits, misses = totals[idx]
        seen = hits + misses
        out.append((idx * w, hits / seen if seen > 0 else 0.0))
    return out
