"""Saturation analyzer: attribute each experiment point to its bottleneck.

The paper's scaling arguments are mechanistic — baselines hit CPU
saturation on their metadata servers first (Figs 12/14/19), Mantle's
lookups are wire-dominated until much higher load, and shared-directory
mutation workloads die of transaction conflicts rather than of any
hardware limit.  This module turns a run's telemetry + metrics into that
attribution automatically: each run is classified as **cpu-bound**,
**fsync-bound**, **rpc-bound** or **contention-bound** when the dominant
score clears a threshold in the steady-state window, else
**underloaded**.

Scores, all in [0, 1]:

* ``cpu`` — max per-host CPU busy-fraction (time-clipped to the steady
  window, from the ``host.cpu_busy_us`` telemetry counter);
* ``fsync`` — max per-host disk busy-fraction (``host.disk_busy_us``);
* ``rpc`` — fraction of completed-op latency spent as network flight
  time (mean RPC rounds x RTT / mean latency).  High when the wire, not
  any server, sets latency — the signature of an unsaturated Mantle;
* ``contention`` — max of the TafDB abort ratio (aborts / outcomes, from
  the per-window ``tafdb.*`` counters) and the op retry ratio.

Since PR 10 a run is no longer scored as one homogeneous blob: when
windowed telemetry exists, :func:`segment_run` change-point-segments the
busy-fraction / latency-digest timelines into labeled phases (warmup /
steady / burst / saturated / drain), each with its own Verdict, and
:func:`classify_run` reports the *primary* phase (longest saturated,
else longest steady, ...).  The fixed middle-half :func:`steady_window`
survives only as the fallback for runs without windowed telemetry.

The classifier itself is pure arithmetic over these numbers, so it is
unit-testable on synthetic timelines and bit-deterministic across
kernels (every input derives from simulated time only).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.telemetry import _bucket_quantile, latency_digests

#: A score must clear this to pin the run on one resource.
DEFAULT_THRESHOLD = 0.5

#: Fraction of the run treated as steady state (the middle half).
STEADY_FRACTION = 0.5

#: Score key -> verdict label.
LABELS = {
    "cpu": "cpu-bound",
    "fsync": "fsync-bound",
    "rpc": "rpc-bound",
    "contention": "contention-bound",
}

UNDERLOADED = "underloaded"


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Classification of one run plus the evidence behind it."""

    label: str
    scores: Dict[str, float]
    hotspots: Dict[str, str]
    window: Tuple[float, float]

    def describe(self) -> str:
        parts = [f"{key}={self.scores.get(key, 0.0):.2f}"
                 for key in sorted(LABELS)]
        hot = self.hotspots.get(self.label.split("-")[0], "")
        suffix = f" @{hot}" if hot else ""
        return f"{self.label}{suffix} ({', '.join(parts)})"


def steady_window(started_us: float, finished_us: float,
                  fraction: float = STEADY_FRACTION) -> Tuple[float, float]:
    """The middle ``fraction`` of ``[started_us, finished_us]`` — clear of
    warm-up (empty caches, cold Raft pipeline) and drain (stragglers)."""
    span = finished_us - started_us
    if span <= 0:
        return started_us, started_us
    mid = started_us + span / 2.0
    half = span * fraction / 2.0
    return mid - half, mid + half


#: Scores that measure distance to a hard ceiling (utilizations/ratios).
#: They outrank ``rpc``, which is a latency decomposition: a host at 90%
#: CPU is the knee even if most of an op's latency is still wire time.
SATURATION_KEYS = ("cpu", "fsync", "contention")


def classify(scores: Dict[str, float],
             threshold: float = DEFAULT_THRESHOLD) -> str:
    """Two-tier dominant-resource classification.

    The highest *saturation* score (cpu/fsync/contention) at or above
    ``threshold`` wins; otherwise a wire fraction >= ``threshold`` makes
    the run rpc-bound; otherwise it is underloaded.  Ties break in sorted
    key order so the verdict is deterministic.
    """
    best_key = None
    best_score = -1.0
    for key in sorted(scores):
        if key in SATURATION_KEYS and scores[key] > best_score:
            best_key = key
            best_score = scores[key]
    if best_key is not None and best_score >= threshold:
        return LABELS.get(best_key, best_key + "-bound")
    if scores.get("rpc", 0.0) >= threshold:
        return LABELS["rpc"]
    return UNDERLOADED


def _busy_fractions(telemetry, metric: str, lo: float,
                    hi: float) -> Dict[str, float]:
    """Per-host busy-fraction of a ``*_busy_us`` counter over ``[lo, hi)``."""
    elapsed = hi - lo
    if elapsed <= 0:
        return {}
    out = {}
    for host in telemetry.hosts(metric):
        counter = telemetry.counter(metric, host)
        capacity = counter.capacity if counter.capacity > 0 else 1.0
        out[host] = counter.sum_clipped(lo, hi) / (elapsed * capacity)
    return out


def _max_entry(fractions: Dict[str, float]) -> Tuple[float, str]:
    best_host = ""
    best = 0.0
    for host in sorted(fractions):
        if fractions[host] > best:
            best = fractions[host]
            best_host = host
    return best, best_host


def rpc_wire_fraction(system, metrics) -> float:
    """Fraction of completed-op latency that is pure network flight."""
    total_latency = sum(rec.total for rec in metrics.latency.values())
    if total_latency <= 0:
        return 0.0
    total_rpcs = sum(rec.total for rec in metrics.rpc_rounds.values())
    rtt = 2.0 * system.costs.net_one_way_us
    return min(1.0, total_rpcs * rtt / total_latency)


def contention_score(metrics, telemetry, lo: float, hi: float) -> float:
    """Max of the steady-window TafDB abort ratio and the retry ratio."""
    aborts = 0.0
    commits = 0.0
    for inst in telemetry.instruments():
        if inst.kind != "counter":
            continue
        if inst.name.startswith("tafdb.aborts."):
            aborts += inst.sum_clipped(lo, hi)
        elif inst.name == "tafdb.commits":
            commits += inst.sum_clipped(lo, hi)
    abort_ratio = aborts / (aborts + commits) if (aborts + commits) > 0 else 0.0
    attempts = metrics.ops_completed + metrics.retries
    retry_ratio = metrics.retries / attempts if attempts > 0 else 0.0
    return max(abort_ratio, retry_ratio)


def _verdict_over(system, metrics, telemetry, lo: float, hi: float,
                  threshold: float = DEFAULT_THRESHOLD) -> Verdict:
    """Score and classify one time window of a finished run.

    cpu/fsync/contention are clipped to ``[lo, hi)``; the rpc wire
    fraction is a run-global latency decomposition (per-op latencies are
    not windowed by resource), which is documented behaviour — a wire-
    dominated run is wire-dominated in every phase.
    """
    cpu_fracs = _busy_fractions(telemetry, "host.cpu_busy_us", lo, hi)
    disk_fracs = _busy_fractions(telemetry, "host.disk_busy_us", lo, hi)
    cpu, cpu_host = _max_entry(cpu_fracs)
    fsync, fsync_host = _max_entry(disk_fracs)
    scores = {
        "cpu": min(1.0, cpu),
        "fsync": min(1.0, fsync),
        "rpc": rpc_wire_fraction(system, metrics),
        "contention": contention_score(metrics, telemetry, lo, hi),
    }
    hotspots = {}
    if cpu_host:
        hotspots["cpu"] = cpu_host
    if fsync_host:
        hotspots["fsync"] = fsync_host
    return Verdict(label=classify(scores, threshold), scores=scores,
                   hotspots=hotspots, window=(lo, hi))


def classify_run(system, metrics, telemetry=None,
                 threshold: float = DEFAULT_THRESHOLD) -> Verdict:
    """Score and classify one finished benchmark run.

    ``telemetry`` defaults to the system simulator's registry; it must
    have been enabled for the run for the cpu/fsync/contention scores to
    be meaningful (they fall back to 0 otherwise).

    When windowed telemetry exists the run is phase-segmented
    (:func:`segment_run`) and the verdict of the :func:`primary_phase`
    is returned — so a burst tacked onto a quiet run no longer dilutes
    (or is diluted by) the steady state.  Without windowed telemetry
    the legacy fixed middle-half window applies.
    """
    if telemetry is None:
        telemetry = system.sim.telemetry
    telemetry.finalize(system.sim.now)
    phases = segment_run(system, metrics, telemetry, threshold)
    primary = primary_phase(phases)
    if primary is not None:
        return primary.verdict
    lo, hi = steady_window(metrics.started_at, metrics.finished_at)
    return _verdict_over(system, metrics, telemetry, lo, hi, threshold)


# -- phase segmentation (PR 10) ---------------------------------------------
#
# A run's telemetry windows are summarised into one feature vector per
# window -- (max host busy-fraction, op completion rate, p99 latency) --
# and split by penalized binary change-point segmentation: recursively
# take the split that most reduces within-segment variance, as long as
# it explains at least SEGMENT_MIN_GAIN of the run's total variance.
# Every input is windowed simulated-time telemetry and every comparison
# breaks ties leftward, so segment boundaries (and therefore triage
# exports) are bit-identical across all three kernels.


#: Stop splitting after this many phases.
SEGMENT_MAX_PHASES = 6

#: A split must explain at least this fraction of the run's total
#: feature variance to be accepted (guards against chasing noise).
SEGMENT_MIN_GAIN = 0.05

#: Mean busy-fraction at or above this marks a phase ``saturated``.
SATURATED_BUSY = 0.85

#: Leading/trailing phases whose completion rate is below this fraction
#: of the peak phase rate are ``warmup`` / ``drain``.
RAMP_FRACTION = 0.5

#: A phase whose rate or p99 exceeds this multiple of the cross-phase
#: median is a ``burst``.
BURST_FACTOR = 1.5

#: Labels :func:`segment_run` can assign.
PHASE_LABELS = ("warmup", "steady", "burst", "saturated", "drain")

#: classify_run picks the longest phase of the first non-empty label.
PRIMARY_PREFERENCE = ("saturated", "steady", "burst", "warmup", "drain")


@dataclasses.dataclass(frozen=True)
class Phase:
    """One labeled segment of a run, with its own bottleneck verdict."""

    label: str
    window: Tuple[float, float]
    verdict: Verdict
    busy: float        #: mean max-host busy fraction over the phase
    rate_per_s: float  #: op completions per simulated second
    p99_us: float      #: merged-digest p99 over the phase
    ops: int           #: op completions inside the phase

    @property
    def duration_us(self) -> float:
        return self.window[1] - self.window[0]

    def describe(self) -> str:
        lo, hi = self.window
        return (f"{self.label:<9} [{lo / 1e3:9.1f}ms, {hi / 1e3:9.1f}ms) "
                f"ops={self.ops} p99={self.p99_us:.0f}us "
                f"busy={self.busy:.2f} -> {self.verdict.describe()}")


def phase_features(telemetry, started_us: float,
                   finished_us: float) -> List[Dict[str, float]]:
    """One feature row per telemetry window overlapping the run.

    Rows are ``{"lo", "hi", "busy", "rate", "p99"}`` with lo/hi clipped
    to ``[started_us, finished_us)``; ``busy`` is the max over hosts and
    over cpu/disk of the busy fraction, ``rate`` is op completions per
    microsecond (from the latency digests), ``p99`` the merged-digest
    per-window p99.  Empty when the registry has no windowed data (the
    caller falls back to the middle-half window).
    """
    w = float(getattr(telemetry, "window_us", 0.0) or 0.0)
    if w <= 0 or finished_us <= started_us:
        return []
    busy_counters = []
    for metric in ("host.cpu_busy_us", "host.disk_busy_us"):
        for host in telemetry.hosts(metric):
            busy_counters.append(telemetry.counter(metric, host))
    digests = [digest for _op, digest in latency_digests(telemetry)]
    if not busy_counters and not digests:
        return []
    rows: List[Dict[str, float]] = []
    for idx in range(int(started_us // w), int(finished_us // w) + 1):
        lo = max(idx * w, started_us)
        hi = min((idx + 1) * w, finished_us)
        if hi <= lo:
            continue
        busy = 0.0
        for counter in busy_counters:
            value = counter.windows.get(idx, 0.0)
            capacity = counter.capacity if counter.capacity > 0 else 1.0
            frac = min(1.0, value / ((hi - lo) * capacity))
            if frac > busy:
                busy = frac
        count = 0
        merged: Dict[int, int] = {}
        for digest in digests:
            cell = digest.windows.get(idx)
            if cell is None:
                continue
            count += cell[1]
            for b, c in cell[0].items():
                merged[b] = merged.get(b, 0) + c
        rows.append({
            "lo": lo,
            "hi": hi,
            "busy": busy,
            "rate": count / (hi - lo),
            "p99": _bucket_quantile(merged, 0.99) if merged else 0.0,
        })
    return rows


def _segment_bounds(vectors: List[Tuple[float, ...]],
                    max_phases: int = SEGMENT_MAX_PHASES,
                    min_gain: float = SEGMENT_MIN_GAIN
                    ) -> List[Tuple[int, int]]:
    """Binary change-point segmentation of normalized feature vectors.

    Returns half-open index ranges covering ``[0, len(vectors))``.  The
    within-segment cost is the summed per-dimension variance; each
    accepted split is the one reducing cost the most, provided the
    reduction clears ``min_gain`` of the unsplit cost.  Strictly-greater
    comparisons keep the leftmost candidate on ties, so the result is
    deterministic.
    """
    n = len(vectors)
    if n == 0:
        return []
    dims = len(vectors[0])
    prefix = [[0.0] * dims]
    prefix_sq = [[0.0] * dims]
    for vec in vectors:
        prev = prefix[-1]
        prev_sq = prefix_sq[-1]
        prefix.append([prev[d] + vec[d] for d in range(dims)])
        prefix_sq.append([prev_sq[d] + vec[d] * vec[d] for d in range(dims)])

    def cost(i: int, j: int) -> float:
        length = j - i
        total = 0.0
        for d in range(dims):
            s = prefix[j][d] - prefix[i][d]
            s2 = prefix_sq[j][d] - prefix_sq[i][d]
            total += s2 - (s * s) / length
        return max(total, 0.0)

    segments: List[Tuple[int, int]] = [(0, n)]
    gain_floor = min_gain * cost(0, n)
    while len(segments) < max_phases:
        best_gain = gain_floor
        best: Optional[Tuple[int, int]] = None
        for si, (i, j) in enumerate(segments):
            if j - i < 2:
                continue
            base = cost(i, j)
            for k in range(i + 1, j):
                gain = base - cost(i, k) - cost(k, j)
                if gain > best_gain:
                    best_gain = gain
                    best = (si, k)
        if best is None:
            break
        si, k = best
        i, j = segments[si]
        segments[si:si + 1] = [(i, k), (k, j)]
    return segments


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _label_segments(busy: List[float], rates: List[float],
                    p99s: List[float]) -> List[str]:
    """Heuristic phase labels from per-segment mean features.

    ``saturated`` (busy at the ceiling) wins outright; leading/trailing
    low-rate segments are ``warmup`` / ``drain``; a remaining segment
    whose rate or p99 spikes above the cross-segment median is a
    ``burst``; everything else is ``steady``.
    """
    k = len(busy)
    labels: List[Optional[str]] = [None] * k
    for i in range(k):
        if busy[i] >= SATURATED_BUSY:
            labels[i] = "saturated"
    peak_rate = max(rates) if rates else 0.0
    if k > 1 and peak_rate > 0:
        i = 0
        while i < k and labels[i] is None \
                and rates[i] < RAMP_FRACTION * peak_rate:
            labels[i] = "warmup"
            i += 1
        j = k - 1
        while j > i and labels[j] is None \
                and rates[j] < RAMP_FRACTION * peak_rate:
            labels[j] = "drain"
            j -= 1
    base_rate = _median(rates)
    base_p99 = _median(p99s)
    for i in range(k):
        if labels[i] is not None:
            continue
        spiky = (base_rate > 0 and rates[i] >= BURST_FACTOR * base_rate) or \
                (base_p99 > 0 and p99s[i] >= BURST_FACTOR * base_p99)
        labels[i] = "burst" if spiky else "steady"
    return [label or "steady" for label in labels]


def segment_run(system, metrics, telemetry=None,
                threshold: float = DEFAULT_THRESHOLD,
                max_phases: int = SEGMENT_MAX_PHASES) -> List[Phase]:
    """Change-point-segment one finished run into labeled phases.

    Returns ``[]`` when the registry has no windowed busy counters or
    latency digests (callers then fall back to the middle-half window).
    Each phase carries its own :class:`Verdict` scored over the phase
    window only.
    """
    if telemetry is None:
        telemetry = system.sim.telemetry
    telemetry.finalize(system.sim.now)
    feats = phase_features(telemetry, metrics.started_at,
                           metrics.finished_at)
    if not feats:
        return []
    max_rate = max(f["rate"] for f in feats) or 1.0
    max_p99 = max(f["p99"] for f in feats) or 1.0
    vectors = [(f["busy"], f["rate"] / max_rate, f["p99"] / max_p99)
               for f in feats]
    bounds = _segment_bounds(vectors, max_phases)
    busy_means: List[float] = []
    rate_means: List[float] = []
    p99_means: List[float] = []
    op_counts: List[int] = []
    for i, j in bounds:
        span = sum(f["hi"] - f["lo"] for f in feats[i:j])
        ops = sum(f["rate"] * (f["hi"] - f["lo"]) for f in feats[i:j])
        busy_means.append(
            sum(f["busy"] * (f["hi"] - f["lo"]) for f in feats[i:j]) / span
            if span > 0 else 0.0)
        rate_means.append(ops / span if span > 0 else 0.0)
        weights = sum(f["rate"] for f in feats[i:j])
        p99_means.append(
            sum(f["p99"] * f["rate"] for f in feats[i:j]) / weights
            if weights > 0 else 0.0)
        op_counts.append(int(round(ops)))
    labels = _label_segments(busy_means, rate_means, p99_means)
    digests = [digest for _op, digest in latency_digests(telemetry)]
    phases: List[Phase] = []
    for seg, label, busy, rate, ops in zip(bounds, labels, busy_means,
                                           rate_means, op_counts):
        i, j = seg
        lo = feats[i]["lo"]
        hi = feats[j - 1]["hi"]
        merged: Dict[int, int] = {}
        for digest in digests:
            w = digest.window_us
            for idx, cell in digest.windows.items():
                if idx * w + w > lo and idx * w < hi:
                    for b, c in cell[0].items():
                        merged[b] = merged.get(b, 0) + c
        phases.append(Phase(
            label=label,
            window=(lo, hi),
            verdict=_verdict_over(system, metrics, telemetry, lo, hi,
                                  threshold),
            busy=busy,
            rate_per_s=rate * 1e6,
            p99_us=_bucket_quantile(merged, 0.99) if merged else 0.0,
            ops=ops,
        ))
    return phases


def primary_phase(phases: List[Phase]) -> Optional[Phase]:
    """The phase whose verdict speaks for the whole run: the longest
    phase of the most load-bearing label present
    (:data:`PRIMARY_PREFERENCE` order; ties break to the earliest)."""
    for label in PRIMARY_PREFERENCE:
        candidates = [p for p in phases if p.label == label]
        if candidates:
            return max(candidates, key=lambda p: p.duration_us)
    return None


def anomalous_phases(phases: List[Phase]) -> List[Phase]:
    """Phases worth triaging: saturated and burst ones, plus any phase
    whose verdict pinned a resource (non-underloaded)."""
    return [p for p in phases
            if p.label in ("saturated", "burst")
            or p.verdict.label != UNDERLOADED]


# -- timeline helpers (CLI rendering / tests) -------------------------------


def utilization_series(counter) -> list:
    """``[(window_start_us, busy_fraction)]`` for a ``*_busy_us`` counter."""
    capacity = counter.capacity if counter.capacity > 0 else 1.0
    denom = counter.window_us * capacity
    return [(start, value / denom) for start, value in counter.series()]


def latency_p99_series(telemetry, q: float = 0.99) -> list:
    """``[(window_start_us, p-quantile latency us)]`` merged across every
    per-op completion-latency digest in the registry."""
    merged: Dict[int, Dict[int, int]] = {}
    w = None
    for _op, digest in latency_digests(telemetry):
        w = digest.window_us
        for idx, cell in digest.windows.items():
            bucket = merged.setdefault(idx, {})
            for b, c in cell[0].items():
                bucket[b] = bucket.get(b, 0) + c
    if w is None:
        return []
    return [(idx * w, _bucket_quantile(merged[idx], q))
            for idx in sorted(merged)]


def hit_ratio_series(telemetry, hits_metric: str = "index.cache_hits",
                     misses_metric: str = "index.cache_misses") -> list:
    """``[(window_start_us, hit_ratio)]`` aggregated across hosts."""
    totals: Dict[int, list] = {}
    for metric, slot in ((hits_metric, 0), (misses_metric, 1)):
        for host in telemetry.hosts(metric):
            counter = telemetry.counter(metric, host)
            for idx, value in counter.windows.items():
                cell = totals.setdefault(idx, [0.0, 0.0])
                cell[slot] += value
    w = None
    for metric in (hits_metric, misses_metric):
        for host in telemetry.hosts(metric):
            w = telemetry.counter(metric, host).window_us
            break
        if w is not None:
            break
    if w is None:
        return []
    out = []
    for idx in sorted(totals):
        hits, misses = totals[idx]
        seen = hits + misses
        out.append((idx * w, hits / seen if seen > 0 else 0.0))
    return out
