"""Plain-text tables and series, the output format of every experiment.

Experiments print "the same rows/series the paper reports"; this module
keeps that rendering in one place so every figure reproduction looks alike
and is machine-parseable (aligned columns, one header row).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence


@dataclasses.dataclass
class Table:
    """One printable result table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.headers)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> List[Any]:
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def render(self) -> str:
        return format_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a Table with aligned columns."""
    cells = [[_fmt(h) for h in table.headers]]
    cells += [[_fmt(v) for v in row] for row in table.rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(table.headers))]
    lines = [f"== {table.title} =="]
    for row_no, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if row_no == 0:
            lines.append("  ".join("-" * width for width in widths))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def table_to_jsonable(table: Table) -> Dict[str, Any]:
    """Table -> plain dict, for machine-readable experiment output."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


#: Column order of :func:`latency_summary_table`, matching
#: :meth:`repro.sim.stats.LatencyRecorder.summary`.
SUMMARY_COLUMNS = ("count", "mean", "p50", "p99", "p999", "max", "stddev")


def latency_summary_table(recorders: Dict[str, Any], title: str,
                          label: str = "op") -> Table:
    """One row per recorder from ``LatencyRecorder.summary()`` digests.

    ``recorders`` maps a row label (op name, case name) to a recorder;
    empty recorders render as all-zero rows rather than being dropped, so
    a missing stream is visible.
    """
    table = Table(title=title,
                  headers=[label] + [c + " us" if c != "count" else c
                                     for c in SUMMARY_COLUMNS])
    for name in sorted(recorders):
        digest = recorders[name].summary()
        table.add_row(name, *[digest[c] for c in SUMMARY_COLUMNS])
    return table


def ratio(numerator: float, denominator: float) -> float:
    """Safe speedup/ratio helper used all over the experiment modules."""
    if denominator == 0:
        return float("inf") if numerator > 0 else 0.0
    return numerator / denominator


def print_tables(tables: Sequence[Table],
                 header: Optional[str] = None) -> str:
    parts = []
    if header:
        parts.append(header)
    parts.extend(table.render() for table in tables)
    text = "\n\n".join(parts)
    print(text)
    return text
