"""Cluster builders matching the paper's Table 2 deployments.

All four systems share the same client fleet and (where applicable) DB
cluster shape; Mantle/LocoFS/InfiniFS additionally get their 3 dedicated
index/directory/coordinator servers.  ``scale`` picks event-budget-friendly
shapes:

* ``"quick"`` — small core counts, fewer shards: unit tests and smoke runs;
* ``"paper"`` — the Table 2 shape (21 servers worth of capacity).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import InfiniFSSystem, LocoFSSystem, TectonicSystem
from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.sim.host import CostModel

SYSTEMS = ("tectonic", "infinifs", "locofs", "mantle")

_SCALES = {
    # (db_servers, db_shards, db_cores, proxies, proxy_cores, index_cores)
    "quick": (6, 24, 4, 4, 16, 16),
    "paper": (18, 72, 32, 8, 32, 64),
}


def build_system(name: str, scale: str = "quick",
                 config: Optional[MantleConfig] = None,
                 costs: Optional[CostModel] = None, **overrides):
    """Build and start one system at the requested scale.

    ``overrides`` are forwarded to the system constructor (baselines) or
    applied to the MantleConfig (mantle), so experiments can toggle
    individual features (learners, AM-Cache, delta records...).
    """
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    db_servers, db_shards, db_cores, proxies, proxy_cores, index_cores = \
        _SCALES[scale]
    costs = costs or CostModel()

    if name == "mantle":
        cfg = config or MantleConfig()
        cfg = cfg.copy(
            num_db_servers=db_servers, num_db_shards=db_shards,
            db_cores=db_cores, num_proxies=proxies,
            proxy_cores=proxy_cores, index_cores=index_cores,
            costs=costs, **overrides)
        system = MantleSystem(cfg)
    elif name == "tectonic":
        # Tectonic gets the 3 extra servers as DB capacity (Table 2: 21).
        system = TectonicSystem(
            num_db_servers=db_servers + 3,
            num_db_shards=db_shards + 3 * (db_shards // db_servers),
            db_cores=db_cores, num_proxies=proxies,
            proxy_cores=proxy_cores, costs=costs, **overrides)
    elif name == "infinifs":
        system = InfiniFSSystem(
            num_db_servers=db_servers, num_db_shards=db_shards,
            db_cores=db_cores, num_proxies=proxies,
            proxy_cores=proxy_cores, coordinator_cores=index_cores,
            costs=costs, **overrides)
    elif name == "locofs":
        system = LocoFSSystem(
            num_db_servers=db_servers, num_db_shards=db_shards,
            db_cores=db_cores, num_proxies=proxies,
            proxy_cores=proxy_cores, dir_server_cores=index_cores,
            costs=costs, **overrides)
    else:
        raise ValueError(f"unknown system {name!r}; pick from {SYSTEMS}")
    system.startup()
    return system
