"""Benchmark harness: cluster builders, workload runner, report tables."""

from repro.bench.cluster import build_system, SYSTEMS
from repro.bench.harness import run_workload, run_single_op
from repro.bench.report import Table, format_table

__all__ = [
    "build_system",
    "SYSTEMS",
    "run_workload",
    "run_single_op",
    "Table",
    "format_table",
]
