"""Cluster introspection: where did the simulated time and CPU go?

After a workload run, :func:`cluster_report` summarises every host's CPU
utilisation, fsync counts, and subsystem counters (transaction aborts,
cache hit rates, Raft batching efficiency).  Used by examples and by
anyone debugging why a configuration under- or over-performs.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import Table


def _hosts_of(system) -> List:
    hosts = []
    tafdb = getattr(system, "tafdb", None)
    if tafdb is not None:
        hosts.extend(tafdb.hosts)
    group = getattr(system, "index_group", None) or \
        getattr(system, "dir_group", None)
    if group is not None:
        seen = set()
        for node in group.nodes.values():
            if id(node.host) not in seen:
                seen.add(id(node.host))
                hosts.append(node.host)
    coordinator = getattr(system, "coordinator", None)
    if coordinator is not None:
        hosts.append(coordinator.host)
    for entry in getattr(system, "proxies", []):
        host = entry.host if hasattr(entry, "host") else entry[0]
        hosts.append(host)
    return hosts


def host_utilization_table(system, elapsed_us: float) -> Table:
    """Per-host CPU utilisation and fsync counts over ``elapsed_us``."""
    table = Table(
        f"host utilisation over {elapsed_us / 1000:.1f} ms "
        f"({getattr(system, 'name', 'system')})",
        ["host", "cores", "cpu busy ms", "utilisation %", "fsyncs"])
    for host in _hosts_of(system):
        table.add_row(
            host.name, host.cores,
            round(host.cpu_busy_us / 1000, 2),
            round(100 * host.utilization(elapsed_us), 1),
            host.fsync_count)
    return table


def subsystem_counters_table(system) -> Table:
    """Aborts, commits, cache statistics and Raft batching efficiency."""
    table = Table(f"subsystem counters ({getattr(system, 'name', 'system')})",
                  ["counter", "value"])
    tafdb = getattr(system, "tafdb", None)
    if tafdb is not None:
        table.add_row("tafdb.commits", tafdb.total_commits)
        table.add_row("tafdb.aborts", tafdb.total_aborts)
        table.add_row("tafdb.rows", tafdb.total_rows)
        table.add_row("tafdb.delta_mode_dirs", tafdb.contention.active_count)
    group = getattr(system, "index_group", None)
    if group is not None:
        leader = group.current_leader()
        if leader is not None:
            table.add_row("raft.proposals", leader.proposals)
            table.add_row("raft.batches", leader.batches_flushed)
            if leader.batches_flushed:
                table.add_row(
                    "raft.mean_batch",
                    round(leader.entries_flushed / leader.batches_flushed, 2))
            cache = leader.state_machine.cache
            table.add_row("pathcache.entries", len(cache))
            table.add_row("pathcache.hit_rate", round(cache.hit_rate, 3))
            table.add_row("pathcache.memory_bytes", cache.memory_bytes)
            invalidator = leader.state_machine.invalidator
            table.add_row("invalidator.purged", invalidator.purged_entries)
    return table


def bottleneck(system, elapsed_us: float) -> str:
    """Name of the busiest host — the first place to look when saturated."""
    hosts = _hosts_of(system)
    if not hosts or elapsed_us <= 0:
        return "unknown"
    busiest = max(hosts, key=lambda h: h.utilization(elapsed_us))
    return busiest.name
