"""Setup shim.

The project is configured via ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools predates
wheel-less PEP 660 editable builds.
"""

from setuptools import setup

setup()
