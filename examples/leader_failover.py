#!/usr/bin/env python
"""Fault tolerance: IndexNode leader failover mid-workload (paper §5.3).

Crashes the IndexNode Raft leader while clients are issuing lookups and
mkdirs.  The group re-elects, proxies fail over, and — because committed
state survives on the remaining replicas — every directory created before
the crash remains resolvable afterwards.

Run:  python examples/leader_failover.py
"""

from repro.bench.cluster import build_system
from repro.errors import MetadataError
from repro.sim.stats import OpContext
from repro.ops import make_op


def main() -> None:
    system = build_system("mantle", "quick")
    sim = system.sim
    system.bulk_mkdir("/prod")
    completed = {"before": 0, "after": 0}
    failed = {"count": 0}

    def client(cid: int):
        for i in range(30):
            phase = "before" if sim.now < 40_000 else "after"
            ctx = OpContext("mkdir")
            try:
                yield from system.perform(make_op(
                    "mkdir", f"/prod/c{cid}_{i}"), ctx=ctx)
                completed[phase] += 1
            except MetadataError:
                failed["count"] += 1
            ctx2 = OpContext("dirstat")
            try:
                yield from system.perform(make_op("dirstat", "/prod"), ctx=ctx2)
            except MetadataError:
                failed["count"] += 1

    def assassin():
        yield sim.timeout(40_000)  # 40 simulated ms into the run
        leader = system.index_group.leader_or_raise()
        print(f"[{sim.now / 1000:8.1f} ms] crashing leader "
              f"indexnode-{leader.id} (term {leader.current_term})")
        system.index_group.crash_node(leader.id)
        new_leader = yield from system.index_group.wait_for_leader()
        print(f"[{sim.now / 1000:8.1f} ms] re-elected: "
              f"indexnode-{new_leader.id} (term {new_leader.current_term})")

    clients = [sim.process(client(cid)) for cid in range(8)]
    sim.process(assassin())
    done = sim.all_of(clients)
    sim.run_until(done)

    print(f"\nmkdirs before crash: {completed['before']}, "
          f"after re-election: {completed['after']}, "
          f"operations failed during the window: {failed['count']}")

    # Verify: every directory the clients think they created still resolves.
    # (Clients may finish mid-election; drive the sim until a leader exists.)
    survivor = sim.run_process(system.index_group.wait_for_leader())
    table = survivor.state_machine.table
    print(f"directories in the new leader's IndexTable: {len(table)}")
    missing = 0
    root_id = table.get(1, "prod")
    for meta in table.entries():
        if table.locate(meta.id) is None:
            missing += 1
    print("lost entries:", missing)
    system.shutdown()
    assert root_id is not None


if __name__ == "__main__":
    main()
