#!/usr/bin/env python
"""AI audio preprocessing over deep paths (paper §6.2 'Audio').

Runs the lookup-bound audio workload against all four metadata services and
prints completion times plus Mantle's TopDirPathCache statistics — the
mechanism behind its flat depth curve (Figure 17).

Run:  python examples/audio_pipeline.py
"""

from repro.bench.cluster import SYSTEMS, build_system
from repro.bench.harness import run_workload
from repro.workloads.audio import AudioPreprocessWorkload


def main() -> None:
    print("Audio preprocessing: 64 tasks, 10 segments each, depth-11 paths\n")
    results = {}
    for name in SYSTEMS:
        system = build_system(name, "quick")
        try:
            workload = AudioPreprocessWorkload(num_clients=64, segments=10,
                                               depth=11)
            metrics = run_workload(system, workload)
            results[name] = metrics.duration_us
            objstat = metrics.latency["objstat"]
            print(f"{name:10s} completion={metrics.duration_us / 1000:8.2f} ms"
                  f"  objstat mean={objstat.mean:7.1f}us p99={objstat.p99:7.1f}us")
            if name == "mantle":
                leader = system.index_group.leader_or_raise()
                cache = leader.state_machine.cache
                print(f"{'':10s} TopDirPathCache: {len(cache)} entries, "
                      f"hit rate {cache.hit_rate:.1%}, "
                      f"{cache.memory_bytes} bytes")
        finally:
            system.shutdown()
    best_baseline = min(v for k, v in results.items() if k != "mantle")
    print(f"\nMantle is {100 * (1 - results['mantle'] / best_baseline):.1f}% "
          "faster than the best baseline on this run")


if __name__ == "__main__":
    main()
