#!/usr/bin/env python
"""Record a workload as a trace, replay it on every system.

Captures the audio-preprocessing workload's operation stream while it runs
on Mantle, writes it out as a portable JSONL trace, then replays the exact
same per-client sequences against all four metadata services — the cleanest
apples-to-apples comparison, and the workflow you would use with a real
production audit log.

Run:  python examples/trace_replay.py
"""

import io

from repro.bench.cluster import SYSTEMS, build_system
from repro.bench.harness import run_workload
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.trace import TraceRecorder, TraceWorkload


def main() -> None:
    print("== recording on mantle ==")
    recorder = TraceRecorder(AudioPreprocessWorkload(num_clients=16,
                                                     segments=8, depth=10))
    system = build_system("mantle", "quick")
    metrics = run_workload(system, recorder)
    system.shutdown()
    buffer = io.StringIO()
    lines = recorder.dump(buffer)
    print(f"captured {lines} operations "
          f"({metrics.duration_us / 1000:.2f} ms simulated)")

    print("\n== replaying the identical trace everywhere ==")
    results = {}
    for name in SYSTEMS:
        buffer.seek(0)
        trace = TraceWorkload.load(buffer)
        target = build_system(name, "quick")
        # The trace holds only operations; pre-populate like the original.
        recorder.workload.setup(target)
        replay = run_workload(target, trace, setup=False)
        results[name] = replay.duration_us
        print(f"{name:10s} completion={replay.duration_us / 1000:8.2f} ms  "
              f"failed={replay.ops_failed}")
        target.shutdown()

    fastest = min(results, key=results.get)
    print(f"\nfastest on this trace: {fastest}")


if __name__ == "__main__":
    main()
