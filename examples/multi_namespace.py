#!/usr/bin/env python
"""Multi-namespace operation (paper §4 / §7).

One Mantle deployment hosting three namespaces: a shared TafDB stores
everyone's metadata while each namespace gets its own IndexNode Raft
group.  Two small namespaces co-locate their IndexNodes on a shared host
pool (§7.2); the busy one gets dedicated servers.

Run:  python examples/multi_namespace.py
"""

from repro.core.config import MantleConfig
from repro.core.multitenant import MantleDeployment
from repro.sim.stats import OpContext
from repro.ops import make_op


def run_op(system, op, *args):
    ctx = OpContext(op)
    return system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))


def main() -> None:
    config = MantleConfig(num_db_servers=6, num_db_shards=24, db_cores=8,
                          num_proxies=4, proxy_cores=16, index_cores=8)
    deployment = MantleDeployment(config, shared_index_pool=3)

    print("== provisioning namespaces ==")
    training = deployment.create_namespace("ai-training")  # dedicated hosts
    ads = deployment.create_namespace("advertising", colocate=True)
    logs = deployment.create_namespace("log-analysis", colocate=True)
    for name, system in deployment.namespaces.items():
        hosts = sorted({n.host.name
                        for n in system.index_group.nodes.values()})
        print(f"  {name:14s} root_id={system.root_id:3d} "
              f"indexnodes={hosts}")

    print("\n== identical paths, fully isolated ==")
    for system in (training, ads, logs):
        run_op(system, "mkdir", "/datasets")
        run_op(system, "create", f"/datasets/{system.namespace}.bin")
    for system in (training, ads, logs):
        listing = run_op(system, "readdir", "/datasets")
        print(f"  {system.namespace:14s} /datasets -> {listing}")

    print("\n== one shared TafDB underneath ==")
    print(f"  total metadata rows across namespaces: "
          f"{deployment.total_metadata_rows}")
    print(f"  directories per namespace: {deployment.namespace_sizes()}")

    print("\n== cross-namespace independence of renames ==")
    run_op(training, "mkdir", "/datasets/v1")
    run_op(training, "dirrename", "/datasets/v1", "/datasets/v2")
    print("  ai-training renamed /datasets/v1 -> /datasets/v2;",
          "advertising unaffected:",
          run_op(ads, "readdir", "/datasets"))

    deployment.shutdown()
    print("\ndone")


if __name__ == "__main__":
    main()
