#!/usr/bin/env python
"""The Spark commit-phase contention study (paper §3.2 / §6.2).

Runs the Analytics workload — many subtasks renaming temporary directories
into one shared output directory — against Mantle twice: once with delta
records disabled (classic in-place parent updates) and once with the full
design.  Prints completion time, transaction retries and the dirrename
latency tail, showing why §5.2.1 exists.

Run:  python examples/spark_job_commit.py
"""

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.core.config import MantleConfig
from repro.workloads.spark import SparkAnalyticsWorkload


def run_once(label: str, config: MantleConfig):
    system = build_system("mantle", "quick", config=config)
    try:
        workload = SparkAnalyticsWorkload(num_clients=24, parts_per_task=2,
                                          rounds=4)
        metrics = run_workload(system, workload)
        rename = metrics.latency["dirrename"]
        print(f"{label:22s} completion={metrics.duration_us / 1000:9.2f} ms  "
              f"retries={metrics.retries:5d}  "
              f"dirrename p50={rename.p50:8.1f}us p99={rename.p99:9.1f}us")
        return metrics.duration_us
    finally:
        system.shutdown()


def main() -> None:
    print("Spark ad-hoc query commit: 24 subtasks x 4 rounds, one shared "
          "output directory\n")
    without = run_once("in-place updates",
                       MantleConfig(enable_delta_records=False))
    with_delta = run_once("delta records (§5.2.1)", MantleConfig())
    print(f"\ndelta records shorten the commit phase by "
          f"{100 * (1 - with_delta / without):.1f}%")


if __name__ == "__main__":
    main()
