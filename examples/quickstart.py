#!/usr/bin/env python
"""Quickstart: a tour of the Mantle public API.

Spins up a small simulated Mantle deployment (3 IndexNode replicas, a
sharded TafDB, 2 proxies) and walks the namespace operations the paper's
COSS exposes: mkdir, create, stat, listdir, rename (with loop detection),
delete and rmdir.  Every call drives the discrete-event cluster under the
hood; latencies printed at the end are *simulated* microseconds.

Run:  python examples/quickstart.py
"""

from repro import MantleClient
from repro.errors import NoSuchPathError, RenameLoopError


def main() -> None:
    with MantleClient() as client:
        print("== building a namespace ==")
        client.mkdir("/datasets")
        client.mkdir("/datasets/audio/raw/2026/07", parents=True)
        for segment in range(5):
            client.create(f"/datasets/audio/raw/2026/07/seg-{segment:03d}.wav")
        print("created:", client.listdir("/datasets/audio/raw/2026/07"))

        print("\n== stat and attributes ==")
        stat = client.objstat("/datasets/audio/raw/2026/07/seg-000.wav")
        print(f"object id={stat.id} kind={stat.kind.value}")
        dstat = client.dirstat("/datasets/audio/raw/2026/07")
        print(f"directory entries={dstat.entry_count}")

        print("\n== cross-directory rename ==")
        client.mkdir("/archive")
        client.rename("/datasets/audio/raw/2026", "/archive/2026")
        print("after rename:", client.listdir("/archive/2026/07"))
        try:
            client.rename("/archive", "/archive/2026/oops")
        except RenameLoopError as exc:
            print("loop detection works:", exc)

        print("\n== cleanup ==")
        client.delete("/archive/2026/07/seg-004.wav")
        try:
            client.objstat("/archive/2026/07/seg-004.wav")
        except NoSuchPathError:
            print("seg-004 is gone")

        print("\n== observability ==")
        print(f"simulated time: {client.simulated_time_us:.0f} us")
        print("TopDirPathCache:", client.cache_stats())
        for op, recorder in sorted(client.metrics.latency.items()):
            print(f"  {op:10s} n={recorder.count:3d} "
                  f"mean={recorder.mean:7.1f}us p99={recorder.p99:7.1f}us")


if __name__ == "__main__":
    main()
