"""Regenerates the §5.3 availability-through-failover timeline (extension)."""


def test_ext_failover_timeline(exhibit):
    (table,) = exhibit("ext-failover")
    rows = table.as_dicts()
    phases = [r["phase"] for r in rows]
    # Full service before the crash, a bounded dip, then recovery.
    assert phases[0] == "before crash"
    assert "election window" in phases
    assert phases[-1] == "recovered"
    # Recovery throughput returns to the same order as pre-crash.
    pre = max(r["ok ops"] for r in rows if r["phase"] == "before crash")
    post = max(r["ok ops"] for r in rows if r["phase"] == "recovered")
    assert post > 0.6 * pre
    # The dip is bounded: at most a handful of windows (election ~100 ms).
    assert phases.count("election window") <= 8
    print(table.render())
