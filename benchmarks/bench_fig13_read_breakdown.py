"""Regenerates Figure 13: latency breakdown of reads/object ops."""


def test_fig13_read_breakdown(exhibit, rows_by):
    table, reductions = exhibit("fig13")
    rows = table.as_dicts()
    # Mantle's lookup phase is the shortest for every operation.
    for op in ("create", "delete", "objstat", "dirstat"):
        lookups = {r["system"]: r["lookup"] for r in rows if r["op"] == op}
        assert lookups["mantle"] <= lookups["tectonic"]
        assert lookups["mantle"] <= lookups["infinifs"]
    by_op = rows_by(reductions, "op")
    # Paper: 83.9-89.0% reduction vs Tectonic; we accept >= 70%.
    for op, row in by_op.items():
        assert row["vs tectonic"] >= 70, (op, row)
    print(table.render())
    print(reductions.render())
