"""Shared fixtures for the figure/table benchmark suite.

Every paper exhibit has one ``bench_*`` module here.  Each benchmark runs
the corresponding experiment once (a single ``pedantic`` round — the
workloads are deterministic simulations, so repetition only wastes time),
records headline context in ``benchmark.extra_info`` and asserts the
paper's qualitative claim ("who wins, by roughly what factor").
"""

from __future__ import annotations

import pytest


@pytest.fixture
def exhibit(benchmark):
    """Run one registered experiment under pytest-benchmark."""
    def _run(experiment_id: str, scale: str = "quick"):
        from repro.experiments import get_experiment

        experiment = get_experiment(experiment_id)
        tables = benchmark.pedantic(
            lambda: experiment.run(scale=scale), rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["claim"] = experiment.paper_claim
        benchmark.extra_info["tables"] = [t.title for t in tables]
        return tables
    return _run


def _rows_by(table, key_header: str):
    idx = list(table.headers).index(key_header)
    return {row[idx]: dict(zip(table.headers, row)) for row in table.rows}


@pytest.fixture
def rows_by():
    """Index a result Table's rows by one column."""
    return _rows_by
