"""Regenerates Figure 11: latency CDFs inside the applications."""


def test_fig11_latency_cdfs(exhibit):
    spark, audio = exhibit("fig11")
    spark_rows = spark.as_dicts()
    # Paper: contended dirrename has extreme tails in at least one baseline
    # (InfiniFS: 10.6% of operations above 5s) while Mantle stays tight.
    mantle_rename = next(r for r in spark_rows
                         if r["op"] == "dirrename" and r["system"] == "mantle")
    worst_tail = max(r["frac > 10x median"] for r in spark_rows
                     if r["op"] == "dirrename" and r["system"] != "mantle")
    assert worst_tail > mantle_rename["frac > 10x median"]
    assert mantle_rename["frac > 10x median"] <= 0.05

    audio_rows = audio.as_dicts()
    # Paper: Mantle's objstat distribution is fast; InfiniFS's is broad.
    objstat = {r["system"]: r for r in audio_rows if r["op"] == "objstat"}
    assert objstat["mantle"]["p50"] <= objstat["tectonic"]["p50"]
    assert objstat["mantle"]["p50"] <= objstat["infinifs"]["p50"]
    print(spark.render())
    print(audio.render())
