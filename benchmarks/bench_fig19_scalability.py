"""Regenerates Figure 19: scalability vs namespace size and client count."""


def test_fig19_scalability(exhibit):
    size_table, client_table = exhibit("fig19")
    # Fig 19a: throughput is flat in namespace size (within 15%).
    for column in ("objstat", "create"):
        values = size_table.column(column)
        assert max(values) <= 1.15 * min(values), (column, values)

    rows = client_table.as_dicts()
    biggest = max(rows, key=lambda r: r["clients"])
    smallest = min(rows, key=lambda r: r["clients"])
    # Fig 19b: leader-only objstat saturates while replicas keep scaling;
    # at the largest client count learners beat leader-only clearly.
    assert biggest["learners/no-follower speedup"] > 1.5
    assert biggest["objstat +learners"] > biggest["objstat +followers"] * 0.9
    # create grows from low to high client counts, then caps at TafDB.
    assert biggest["create"] > smallest["create"]
    print(size_table.render())
    print(client_table.render())
