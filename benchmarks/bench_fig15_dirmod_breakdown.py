"""Regenerates Figure 15: latency breakdown of directory modifications."""


def test_fig15_dirmod_breakdown(exhibit):
    (table,) = exhibit("fig15")
    rows = table.as_dicts()

    def cell(case, system):
        return next(r for r in rows
                    if r["case"] == case and r["system"] == system)

    # Paper: Mantle records zero lookup time in dirrename (merged with loop
    # detection), and Tectonic performs no loop detection at all.
    for case in ("dirrename-e", "dirrename-s"):
        assert cell(case, "mantle")["lookup"] == 0
        assert cell(case, "mantle")["loop detect"] > 0
        assert cell(case, "tectonic")["loop detect"] == 0
    # Loop detection shows up for InfiniFS renames too.
    assert cell("dirrename-e", "infinifs")["loop detect"] > 0
    # mkdir has no loop-detection phase anywhere.
    for system in ("tectonic", "infinifs", "locofs", "mantle"):
        assert cell("mkdir-e", system)["loop detect"] == 0
    # Contention inflates the execution phase, not the lookup phase.
    assert cell("mkdir-s", "tectonic")["execution"] > \
        3 * cell("mkdir-e", "tectonic")["execution"]
    print(table.render())
