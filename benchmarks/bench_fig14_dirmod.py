"""Regenerates Figure 14: directory-modification throughput."""


def test_fig14_dirmod_throughput(exhibit, rows_by):
    (table,) = exhibit("fig14")
    by_case = rows_by(table, "case")
    # Paper: Mantle achieves the highest throughput in every case.
    for case, row in by_case.items():
        best_baseline = max(row["tectonic"], row["infinifs"], row["locofs"])
        assert row["mantle"] >= best_baseline * 0.95, (case, row)
    # Shared-directory collapse: Tectonic's mkdir-s is a small fraction of
    # its mkdir-e (paper: 99.7% drop), and delta records keep Mantle high.
    assert by_case["mkdir-s"]["tectonic"] < 0.3 * by_case["mkdir-e"]["tectonic"]
    assert by_case["mkdir-s"]["mantle"] > 1.5 * by_case["mkdir-s"]["infinifs"]
    assert by_case["dirrename-s"]["mantle"] > \
        2 * by_case["dirrename-s"]["tectonic"]
    # LocoFS is pinned to its per-op Raft floor (paper: worst in -e cases).
    assert by_case["mkdir-e"]["locofs"] < by_case["mkdir-e"]["tectonic"]
    print(table.render())
