"""Regenerates Figure 20: impact of adding metadata caching."""


def test_fig20_metadata_caching(exhibit):
    (table,) = exhibit("fig20")
    rows = table.as_dicts()

    def cell(workload, system):
        return next(r for r in rows
                    if r["workload"] == workload and r["system"] == system)

    # Paper: caching substantially improves InfiniFS on read-heavy Audio
    # (115.1s -> 63.0s) but helps Mantle far less (68.9s -> 63.0s).
    assert cell("audio", "infinifs")["improvement %"] > 15
    assert cell("audio", "infinifs")["improvement %"] > \
        cell("audio", "mantle")["improvement %"]
    # Analytics (modification-dominated) sees at most modest gains.
    assert cell("analytics", "mantle")["improvement %"] < 20
    print(table.render())
