"""Regenerates Figure 18: impact of k in TopDirPathCache."""


def test_fig18_cache_k(exhibit, rows_by):
    (table,) = exhibit("fig18")
    by_k = rows_by(table, "k")
    # Paper: latency rises with k; memory falls steeply (k=3 uses ~12% of
    # k=1's memory and is ~31% slower than k=1 — still far below no-cache).
    latencies = [by_k[k]["latency us"] for k in (1, 2, 3, 4, 5)]
    assert latencies == sorted(latencies)
    assert by_k[3]["memory vs k=1"] < 0.35
    assert by_k[3]["normalised to base"] < 0.8
    assert by_k[3]["vs k=1"] < 1.6
    # Cacheable coverage shrinks (weakly) with k.
    coverage = [by_k[k]["ns4 coverage"] for k in (1, 3, 5)]
    assert coverage[0] >= coverage[1] >= coverage[2]
    print(table.render())
