"""Regenerates the §7.2 co-location trade-off study (extension)."""


def test_ext_colocation_tradeoff(exhibit):
    (table,) = exhibit("ext-coloc")
    rows = table.as_dicts()

    def latency(placement, load):
        return next(r["victim mean latency us"] for r in rows
                    if r["placement"] == placement
                    and r["neighbour load"] == load)

    # Dedicated hosts isolate the victim from neighbour load.
    assert latency("dedicated hosts", "96 clients") <= \
        1.02 * latency("dedicated hosts", "idle")
    # A shared pool does not: the noisy neighbour inflates victim latency.
    assert latency("shared pool", "96 clients") > \
        1.05 * latency("shared pool", "idle")
    print(table.render())
