"""Regenerates Figure 17: impact of path depth on resolution latency."""


def test_fig17_depth_scaling(exhibit, rows_by):
    (table,) = exhibit("fig17")
    by_system = rows_by(table, "system")
    # Paper: Tectonic's lookup latency grows ~linearly with depth (6.82x
    # from depth 1 to 10); Mantle stays essentially flat (1.09x).
    assert by_system["tectonic"]["depth10 / depth2"] > 3.0
    assert by_system["mantle"]["depth10 / depth2"] < 1.4
    # Mantle is flattest of all four systems.
    for name in ("tectonic", "infinifs", "locofs"):
        assert by_system["mantle"]["depth10 / depth2"] <= \
            by_system[name]["depth10 / depth2"]
    # Monotone growth for the sequential resolver.
    depths = [by_system["tectonic"][f"depth {d}"] for d in (2, 4, 6, 8, 10)]
    assert depths == sorted(depths)
    print(table.render())
