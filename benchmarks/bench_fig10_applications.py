"""Regenerates Figure 10: application completion times."""


def test_fig10_application_completion(exhibit):
    metadata_only, with_data = exhibit("fig10")
    for table in (metadata_only, with_data):
        rows = table.as_dicts()
        for workload in ("analytics", "audio"):
            times = {r["system"]: r["completion ms"] for r in rows
                     if r["workload"] == workload}
            # Paper: Mantle has the shortest completion time in every cell
            # (63.3-93.3% shorter for Analytics, 38.5-47.7% for Audio).
            best_baseline = min(v for k, v in times.items() if k != "mantle")
            assert times["mantle"] <= best_baseline * 1.05, (
                table.title, workload, times)
        print(table.render())
