"""Regenerates Figure 12: throughput of object ops and directory reads."""


def test_fig12_read_throughput(exhibit, rows_by):
    (table,) = exhibit("fig12")
    by_op = rows_by(table, "op")
    for op, row in by_op.items():
        # Paper ordering: Tectonic < InfiniFS < (LocoFS, Mantle).
        assert row["tectonic"] < row["infinifs"] < row["mantle"], op
        assert row["mantle/tectonic"] > 2.0, op
    # Lookup-bound ops: Mantle beats LocoFS; create is the closest race.
    assert by_op["objstat"]["mantle/locofs"] > 1.0
    assert by_op["dirstat"]["mantle/locofs"] > 1.0
    assert by_op["create"]["mantle/locofs"] > 0.8
    print(table.render())
