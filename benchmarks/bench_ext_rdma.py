"""Regenerates the §7.2 RDMA PoC ablation (extension)."""


def test_ext_rdma_poc(exhibit, rows_by):
    (table,) = exhibit("ext-rdma")
    by_framework = rows_by(table, "rpc framework")
    # Paper PoC: 500K -> 1M ops/s per node, a 2x improvement.
    assert by_framework["rdma"]["speedup"] > 1.4
    assert by_framework["rdma"]["lookup throughput Kop/s"] > \
        by_framework["tcp"]["lookup throughput Kop/s"]
    print(table.render())
