"""Regenerates Figure 4: DBtable-based service bottlenecks."""


def test_fig04_dbtable_bottlenecks(exhibit, rows_by):
    breakdown, contention = exhibit("fig04")
    by_op = rows_by(breakdown, "operation")
    # Paper Fig 4a: lookup dominates (89.9/91.2/63.1% of latency).
    assert by_op["objstat"]["lookup share %"] > 80
    assert by_op["dirstat"]["lookup share %"] > 80
    assert by_op["delete"]["lookup share %"] > 45
    # Paper Fig 4b: contention collapses throughput by ~99%.
    for row in rows_by(contention, "operation").values():
        assert row["throughput drop %"] > 60
        assert row["retries under conflict"] > 0
    print(breakdown.render())
    print(contention.render())
