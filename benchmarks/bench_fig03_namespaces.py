"""Regenerates Figure 3: namespace characteristics of ns1-ns5."""


def test_fig03_namespace_characteristics(exhibit, rows_by):
    shape, depths = exhibit("fig03")
    by_ns = rows_by(shape, "namespace")
    assert set(by_ns) == {"ns1", "ns2", "ns3", "ns4", "ns5"}
    # Paper Fig 3a: objects are 82.0-91.7% of entries in every namespace.
    for row in by_ns.values():
        assert 75.0 <= row["object %"] <= 95.0
    # Paper Fig 3b: average depths cluster around 11.
    for row in rows_by(depths, "namespace").values():
        assert 8.0 <= row["synth avg depth"] <= 17.0
        assert row["max depth"] >= 15
    print(shape.render())
    print(depths.render())
