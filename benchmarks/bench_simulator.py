"""Wall-clock micro-benchmarks of the DES kernel and TafDB substrate.

The whole reproduction rides on the event loop: these benchmarks track how
many simulated events/transactions per wall-second the kernel sustains.
"""

import pytest

from repro.bench.wallclock import _run_bench
from repro.sim.core import AnyOf, Simulator
from repro.sim.host import Host
from repro.sim.resources import Resource, Store
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.types import AttrMeta, EntryKind


def test_kernel_timeout_churn(benchmark):
    def run():
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(20):
                yield sim.timeout(1)
            done.append(i)

        for i in range(200):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 200


def test_kernel_resource_contention(benchmark):
    def run():
        sim = Simulator()
        host = Host(sim, "h", cores=4)

        def worker():
            for _ in range(10):
                yield from host.work(5)

        for _ in range(50):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) > 0


def test_kernel_immediate_resume_chain(benchmark):
    """Zero-delay yields: the microtask-deque fast path in Process._resume."""
    def run():
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(100):
                event = sim.event()
                event.succeed()
                yield event
            done.append(i)

        for i in range(50):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 50


def test_kernel_uncontended_resource(benchmark):
    """request()/release() with free capacity: the counters-only grant path."""
    def run():
        sim = Simulator()
        resource = Resource(sim, capacity=4)

        def worker():
            for _ in range(500):
                request = resource.request()
                yield request
                resource.release(request)

        sim.process(worker())
        sim.run()
        return resource.total_grants

    assert benchmark(run) == 500


def test_kernel_store_pingpong(benchmark):
    """put/get hand-off between two processes, like every RPC reply queue."""
    def run():
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for i in range(500):
                store.put(i)
                yield sim.timeout(1)

        def consumer():
            for _ in range(500):
                item = yield store.get()
                received.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return len(received)

    assert benchmark(run) == 500


def test_kernel_anyof_fanout(benchmark):
    """AnyOf over 64 events: the O(1) winner-index lookup."""
    def run():
        sim = Simulator()
        winners = []

        def worker():
            for round_no in range(30):
                timeouts = [sim.timeout(1 + ((round_no + k) % 7))
                            for k in range(64)]
                first = yield AnyOf(sim, timeouts)
                winners.append(first)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        return len(winners)

    assert benchmark(run) == 120


# Scaled-down versions of the repro.bench.wallclock multi-host benches,
# parametrized over the kernel so the lanes-off/lanes-on wall-clock ratio
# shows up side by side in the benchmark report.  The full paper_scale
# topologies (and the asserted lane-speedup gate) live in
# ``python -m repro.bench.wallclock --assert-lanes``.
_MULTIHOST_QUICK = {
    "rpc_hot_shard": dict(
        kind="rpc", service_hosts=1, service_cores=64, client_hosts=1,
        fleet_hosts=256, num_clients=128, rpcs_per_client=6, think_us=0.0,
        work_us=30.0, work_stages=6, timers_per_host=4,
        timer_period_us=250_000.0, watchdogs_per_host=32),
    "fleet_sweeps": dict(
        kind="sweep", fleet_hosts=1024, collector_hosts=8,
        sweeps_per_host=1, sweep_steps=32, step_us=1.0,
        spread_us=200_000.0, watchdogs_per_host=16),
    "shard_compaction": dict(
        kind="compact", fleet_hosts=512, watchdogs_per_host=32,
        shard_hosts=2, steps_per_shard=10_000, step_us=1.0),
}


@pytest.mark.parametrize("kernel", ["fast", "lanes"])
@pytest.mark.parametrize("topology", sorted(_MULTIHOST_QUICK))
def test_kernel_multihost(benchmark, topology, kernel):
    params = _MULTIHOST_QUICK[topology]

    def run():
        ops, _elapsed, final_now = _run_bench(kernel, params)
        return ops, final_now

    ops, final_now = benchmark(run)
    assert ops > 0 and final_now > 0
    # Same simulated history on both kernels (full bit-identity is pinned
    # by the determinism and stress suites).
    other = "lanes" if kernel == "fast" else "fast"
    assert _run_bench(other, params)[2] == final_now


def test_shard_single_shard_txns(benchmark):
    def run():
        shard = ShardState()
        shard.execute("seed", [WriteIntent(
            attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
        for i in range(1000):
            shard.execute(f"t{i}", [WriteIntent(
                dirent_key(1, f"o{i}"), "insert",
                Dirent(id=i + 10, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])
        return shard.row_count

    assert benchmark(run) == 1001


def test_shard_scan_children(benchmark):
    shard = ShardState()
    shard.execute("seed", [WriteIntent(
        attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
    for i in range(1000):
        shard.execute(f"t{i}", [WriteIntent(
            dirent_key(1, f"o{i:04d}"), "insert",
            Dirent(id=i + 10, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])

    def scan():
        return shard.scan_children(1, limit=100)

    assert len(benchmark(scan)) == 100
