"""Wall-clock micro-benchmarks of the DES kernel and TafDB substrate.

The whole reproduction rides on the event loop: these benchmarks track how
many simulated events/transactions per wall-second the kernel sustains.
"""

from repro.sim.core import Simulator
from repro.sim.host import Host
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.types import AttrMeta, EntryKind


def test_kernel_timeout_churn(benchmark):
    def run():
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(20):
                yield sim.timeout(1)
            done.append(i)

        for i in range(200):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 200


def test_kernel_resource_contention(benchmark):
    def run():
        sim = Simulator()
        host = Host(sim, "h", cores=4)

        def worker():
            for _ in range(10):
                yield from host.work(5)

        for _ in range(50):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) > 0


def test_shard_single_shard_txns(benchmark):
    def run():
        shard = ShardState()
        shard.execute("seed", [WriteIntent(
            attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
        for i in range(1000):
            shard.execute(f"t{i}", [WriteIntent(
                dirent_key(1, f"o{i}"), "insert",
                Dirent(id=i + 10, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])
        return shard.row_count

    assert benchmark(run) == 1001


def test_shard_scan_children(benchmark):
    shard = ShardState()
    shard.execute("seed", [WriteIntent(
        attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
    for i in range(1000):
        shard.execute(f"t{i}", [WriteIntent(
            dirent_key(1, f"o{i:04d}"), "insert",
            Dirent(id=i + 10, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])

    def scan():
        return shard.scan_children(1, limit=100)

    assert len(benchmark(scan)) == 100
