"""Wall-clock micro-benchmarks of the DES kernel and TafDB substrate.

The whole reproduction rides on the event loop: these benchmarks track how
many simulated events/transactions per wall-second the kernel sustains.
"""

from repro.sim.core import AnyOf, Simulator
from repro.sim.host import Host
from repro.sim.resources import Resource, Store
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.types import AttrMeta, EntryKind


def test_kernel_timeout_churn(benchmark):
    def run():
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(20):
                yield sim.timeout(1)
            done.append(i)

        for i in range(200):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 200


def test_kernel_resource_contention(benchmark):
    def run():
        sim = Simulator()
        host = Host(sim, "h", cores=4)

        def worker():
            for _ in range(10):
                yield from host.work(5)

        for _ in range(50):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) > 0


def test_kernel_immediate_resume_chain(benchmark):
    """Zero-delay yields: the microtask-deque fast path in Process._resume."""
    def run():
        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(100):
                event = sim.event()
                event.succeed()
                yield event
            done.append(i)

        for i in range(50):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 50


def test_kernel_uncontended_resource(benchmark):
    """request()/release() with free capacity: the counters-only grant path."""
    def run():
        sim = Simulator()
        resource = Resource(sim, capacity=4)

        def worker():
            for _ in range(500):
                request = resource.request()
                yield request
                resource.release(request)

        sim.process(worker())
        sim.run()
        return resource.total_grants

    assert benchmark(run) == 500


def test_kernel_store_pingpong(benchmark):
    """put/get hand-off between two processes, like every RPC reply queue."""
    def run():
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for i in range(500):
                store.put(i)
                yield sim.timeout(1)

        def consumer():
            for _ in range(500):
                item = yield store.get()
                received.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return len(received)

    assert benchmark(run) == 500


def test_kernel_anyof_fanout(benchmark):
    """AnyOf over 64 events: the O(1) winner-index lookup."""
    def run():
        sim = Simulator()
        winners = []

        def worker():
            for round_no in range(30):
                timeouts = [sim.timeout(1 + ((round_no + k) % 7))
                            for k in range(64)]
                first = yield AnyOf(sim, timeouts)
                winners.append(first)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        return len(winners)

    assert benchmark(run) == 120


def test_shard_single_shard_txns(benchmark):
    def run():
        shard = ShardState()
        shard.execute("seed", [WriteIntent(
            attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
        for i in range(1000):
            shard.execute(f"t{i}", [WriteIntent(
                dirent_key(1, f"o{i}"), "insert",
                Dirent(id=i + 10, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])
        return shard.row_count

    assert benchmark(run) == 1001


def test_shard_scan_children(benchmark):
    shard = ShardState()
    shard.execute("seed", [WriteIntent(
        attr_key(1), "insert", AttrMeta(id=1, kind=EntryKind.DIRECTORY))])
    for i in range(1000):
        shard.execute(f"t{i}", [WriteIntent(
            dirent_key(1, f"o{i:04d}"), "insert",
            Dirent(id=i + 10, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=i + 10, kind=EntryKind.OBJECT)))])

    def scan():
        return shard.scan_children(1, limit=100)

    assert len(benchmark(scan)) == 100
