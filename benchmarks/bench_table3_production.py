"""Regenerates Table 3: production namespace characteristics + headroom."""


def test_table3_production_headroom(exhibit, rows_by):
    profiles, capacity = exhibit("table3")
    by_name = rows_by(profiles, "name")
    assert set(by_name) == {"C1", "C2", "C3", "C4", "C5"}
    # Published peaks: 175-400 Kop/s lookup, 9-24 Kop/s mkdir.
    for row in by_name.values():
        assert 175 <= row["peak lookup Kop/s"] <= 400
        assert 9 <= row["peak mkdir Kop/s"] <= 24
    # Paper: production peaks are "only a fraction of Mantle's capacity".
    by_metric = rows_by(capacity, "metric")
    assert by_metric["lookup"]["headroom x (vs scaled peak)"] > 1.0
    assert by_metric["mkdir"]["headroom x (vs scaled peak)"] > 1.0
    print(profiles.render())
    print(capacity.render())
