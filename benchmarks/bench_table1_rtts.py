"""Regenerates Table 1: RTT rounds per lookup."""


def test_table1_rtt_comparison(exhibit, rows_by):
    (table,) = exhibit("table1")
    by_system = rows_by(table, "system")
    # Paper: pathlen RTTs for the DBtable approach, single-RPC resolution
    # for tiering (LocoFS) and Mantle.
    assert by_system["tectonic"]["mean RPCs (whole op)"] >= 9.5
    assert by_system["mantle"]["mean RPCs (whole op)"] <= 2.5
    assert by_system["locofs"]["mean RPCs (whole op)"] <= 2.5
    # Lookup dominates the DBtable service's latency (Fig 4a's 89.9%).
    assert by_system["tectonic"]["lookup-phase share of latency"] > 0.8
    print(table.render())
