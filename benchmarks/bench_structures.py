"""Wall-clock micro-benchmarks of the hot data structures.

These measure real Python performance (not simulated time): the IndexNode
serves millions of lookups per second in production, so the per-operation
costs of its structures are worth tracking across changes.
"""

import random

import pytest

from repro.indexnode.index_table import IndexTable
from repro.indexnode.path_cache import TopDirPathCache
from repro.structures.lru import LRUCache
from repro.structures.radix_tree import PrefixTree
from repro.structures.skiplist import SkipList
from repro.types import ROOT_ID, AccessMeta, Permission

_N = 2000


def _chain_table(depth=10, chains=200):
    table = IndexTable()
    next_id = 2
    for chain in range(chains):
        pid = ROOT_ID
        for level in range(depth):
            name = f"c{chain}_l{level}"
            if table.get(pid, name) is None:
                table.insert(AccessMeta(pid=pid, name=name, id=next_id))
                pid = next_id
                next_id += 1
            else:
                pid = table.get(pid, name).id
    return table


@pytest.fixture(scope="module")
def chain_table():
    return _chain_table()


def test_index_table_resolve_depth10(benchmark, chain_table):
    parts = [f"c7_l{level}" for level in range(10)]

    def resolve():
        return chain_table.resolve_dir(parts)

    dir_id, _perm, probes = benchmark(resolve)
    assert probes == 10


def test_index_table_ancestor_chain(benchmark, chain_table):
    deep_id, _perm, _probes = chain_table.resolve_dir(
        [f"c3_l{level}" for level in range(10)])
    chain = benchmark(chain_table.ancestor_chain, deep_id)
    assert chain[-1] == ROOT_ID


def test_path_cache_probe(benchmark):
    cache = TopDirPathCache(k=3)
    for i in range(_N):
        cache.insert(f"/a/b{i}/c", i + 2, Permission.ALL)
    keys = [f"/a/b{i}/c" for i in range(_N)]
    rng = random.Random(1)

    def probe():
        return cache.probe(rng.choice(keys))

    assert benchmark(probe) is not None


def test_prefix_tree_insert_remove(benchmark):
    paths = [f"/x/y{i % 50}/z{i}" for i in range(500)]

    def cycle():
        tree = PrefixTree()
        for path in paths:
            tree.insert(path)
        tree.remove_subtree("/x")
        return tree

    assert len(benchmark(cycle)) == 0


def test_prefix_tree_descendant_scan(benchmark):
    tree = PrefixTree()
    for i in range(_N):
        tree.insert(f"/ns/d{i % 40}/leaf{i}")

    def scan():
        return list(tree.descendants("/ns/d7"))

    assert len(benchmark(scan)) == _N // 40


def test_skiplist_insert_search_remove(benchmark):
    keys = [f"/p/{i:05d}" for i in range(500)]

    def cycle():
        sl = SkipList(seed=3)
        for key in keys:
            sl.insert(key)
        hits = sum(1 for key in keys if key in sl)
        for key in keys:
            sl.remove(key)
        return hits

    assert benchmark(cycle) == 500


def test_skiplist_contains_prefix_of(benchmark):
    sl = SkipList(seed=3)
    for i in range(200):
        sl.insert(f"/mods/dir{i}")

    def probe():
        return sl.contains_prefix_of("/mods/dir42/deep/child/path")

    assert benchmark(probe) == "/mods/dir42"


def test_lru_cache_churn(benchmark):
    def churn():
        cache = LRUCache(256)
        for i in range(2000):
            cache.put(i % 512, i)
            cache.get((i * 7) % 512)
        return cache.hits

    assert benchmark(churn) > 0
