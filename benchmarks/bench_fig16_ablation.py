"""Regenerates Figure 16: effects of individual optimisations."""


def test_fig16_ablation(exhibit, rows_by):
    normalised, raw = exhibit("fig16")
    by_config = rows_by(normalised, "configuration")
    # Paper: '+pathcache' substantially lifts dirstat (about doubles it).
    assert by_config["+pathcache"]["dirstat-e"] > 1.3
    # '+raftlogbatch' takes effect on mkdir-e by amortising commits.
    assert by_config["+raftlogbatch"]["mkdir-e"] > \
        2 * by_config["+pathcache"]["mkdir-e"]
    # '+delta record' eliminates the dirrename-s conflicts.
    assert by_config["+delta record"]["dirrename-s"] > \
        3 * by_config["+raftlogbatch"]["dirrename-s"]
    # '+follower read' adds lookup headroom on top of the path cache.
    assert by_config["+follower read"]["dirstat-e"] > \
        by_config["+pathcache"]["dirstat-e"]
    print(normalised.render())
    print(raw.render())
